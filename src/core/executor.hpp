// WorkflowRunner: builds the virtual cluster, staging service, and
// application actors described by a WorkflowSpec, arms the failure plan,
// runs the discrete-event simulation to completion, and collects metrics.
// One runner executes one workflow run; construct a fresh runner per run.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "core/trace.hpp"
#include "core/workflow.hpp"
#include "dht/spatial_index.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "staging/client.hpp"
#include "staging/server.hpp"
#include "util/rng.hpp"

namespace dstage::core {

class WorkflowRunner {
 public:
  explicit WorkflowRunner(WorkflowSpec spec);
  ~WorkflowRunner();
  WorkflowRunner(const WorkflowRunner&) = delete;
  WorkflowRunner& operator=(const WorkflowRunner&) = delete;

  /// Execute the workflow to completion and return the collected metrics.
  /// Throws std::runtime_error if the simulation deadlocks (event queue
  /// drained before every component finished).
  RunMetrics run();

  /// Post-run introspection.
  [[nodiscard]] const staging::StagingServer& server(int i) const {
    return *servers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int server_count() const {
    return static_cast<int>(servers_.size());
  }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  /// Structured execution timeline (populated during run()).
  [[nodiscard]] const Trace& trace() const { return trace_; }

 private:
  struct Comp {
    ComponentSpec spec;
    staging::AppId id = -1;
    cluster::VprocId vproc = -1;
    std::unique_ptr<staging::StagingClient> client;
    int current_ts = 0;       // last fully completed timestep
    int last_ckpt_ts = 0;     // freshest restartable checkpoint (any level)
    int last_pfs_ckpt_ts = 0; // freshest PFS-level checkpoint
    bool done = false;
    bool recovering = false;
    ComponentMetrics metrics;
  };

  struct PlannedFailure {
    int comp = 0;
    int ts = 1;
    double phase = 0.5;  // fraction of the timestep's compute before death
    bool node_level = false;  // node failure: local checkpoints are lost
    bool predicted = false;   // the failure predictor flagged it in advance
    bool fired = false;
  };

  void build();
  void plan_failures();
  [[nodiscard]] Box subset_region(double fraction) const;
  [[nodiscard]] int total_app_cores() const;
  [[nodiscard]] bool uses_logging() const {
    return scheme_uses_logging(spec_.scheme);
  }
  [[nodiscard]] bool comp_logged(const Comp& c) const;
  void check_all_done();
  void on_vproc_failure(cluster::VprocId vproc);

  sim::Task<void> run_component(Comp* comp, int start_ts);
  sim::Task<void> run_component_recovered(Comp* comp);
  sim::Task<void> maybe_fail(Comp* comp, int ts, sim::Ctx ctx);
  sim::Task<void> maybe_checkpoint(Comp* comp, int ts, sim::Ctx ctx);
  /// Emergency (proactive) checkpoint to node-local storage + staging event.
  sim::Task<void> proactive_checkpoint(Comp* comp, int ts, sim::Ctx ctx);
  sim::Task<void> recover_cr(Comp* comp);
  sim::Task<void> recover_failover(Comp* comp);
  sim::Task<void> recover_coordinated();

  RunMetrics collect();
  void teardown();

  WorkflowSpec spec_;
  sim::Engine engine_;
  net::Fabric fabric_;
  cluster::Cluster cluster_;
  cluster::Pfs pfs_;
  std::unique_ptr<dht::SpatialIndex> index_;
  std::vector<std::unique_ptr<staging::StagingServer>> servers_;
  std::vector<cluster::VprocId> server_vprocs_;
  std::vector<std::unique_ptr<Comp>> comps_;
  std::unique_ptr<sim::Barrier> barrier_;  // coordinated checkpoint barrier
  std::unique_ptr<sim::OneShotEvent> all_done_;
  std::unique_ptr<staging::StagingClient> control_client_;
  cluster::VprocId control_vproc_ = -1;
  sim::CancelToken sys_token_;
  std::vector<PlannedFailure> plan_;
  Rng rng_;
  Trace trace_;
  int global_ckpt_ts_ = 0;
  bool co_recovery_active_ = false;
  int failures_injected_ = 0;
  bool ran_ = false;
  bool tearing_down_ = false;
};

}  // namespace dstage::core
