// The queue-based data consistency algorithm of Section III: each staging
// server keeps one event queue per application component, recording put/get
// data events and checkpoint (W_Chk_ID) markers. On recovery the queue
// segment after the application's last checkpoint becomes the replay
// script: re-issued puts are matched and suppressed, re-issued gets are
// resolved to the version observed during the initial execution.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "net/message.hpp"
#include "util/geometry.hpp"

namespace dstage::wlog {

using net::AppId;
using net::Version;

/// Workflow-checkpoint identifier (unique per checkpoint event).
using WChkId = std::uint64_t;

using EventKind = net::EventKind;

/// One queue record. This *is* the shared net::EventRecord POD — the same
/// record the QueueBackup mirror message carries verbatim, so queue
/// resilience involves no per-field flattening between layers.
using LogEvent = net::EventRecord;

/// Modeled serialized footprint of one queue record (descriptor + indexing
/// entry), used by the staging memory accounting.
std::uint64_t event_metadata_bytes(const LogEvent& e);

/// Per-(server, application) event queue with replay cursor.
class EventQueue {
 public:
  /// Append an event observed during normal (non-replay) execution.
  void record(LogEvent e);

  /// Enter replay mode after the app was restored to its last checkpoint:
  /// the script is every data event after the last checkpoint marker.
  /// Returns the script length. Re-entrant (a second failure during replay
  /// rewinds the cursor to the script start).
  std::size_t begin_replay();

  [[nodiscard]] bool replaying() const { return replaying_; }

  /// Next data event the replaying app is expected to re-issue, or nullptr
  /// when the queue is not in replay mode.
  [[nodiscard]] const LogEvent* expected() const;

  /// Consume the expected event; leaves replay mode at script end.
  void advance();

  /// GC: drop events strictly before the last checkpoint marker (they can
  /// never be replayed again). Cursor state is preserved. Returns the
  /// number of dropped events.
  std::size_t truncate_before_last_checkpoint();

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t metadata_bytes() const {
    return metadata_bytes_;
  }
  [[nodiscard]] const std::deque<LogEvent>& events() const { return events_; }
  /// Version recorded by the most recent checkpoint marker, if any.
  [[nodiscard]] bool has_checkpoint() const;
  [[nodiscard]] Version last_checkpoint_version() const;

 private:
  /// Index one past the last checkpoint marker (0 when none).
  [[nodiscard]] std::size_t script_start() const;
  /// Advance the cursor over checkpoint/recovery markers inside the script.
  void skip_non_data();

  std::deque<LogEvent> events_;
  bool replaying_ = false;
  std::size_t cursor_ = 0;
  std::size_t replay_end_ = 0;
  std::uint64_t metadata_bytes_ = 0;
};

}  // namespace dstage::wlog
