#include "wlog/codec.hpp"

#include <array>
#include <cstring>

#include "util/checksum.hpp"

namespace dstage::wlog::codec {

namespace {

constexpr std::uint32_t kMagic = 0x30434C57u;  // "WLC0"
constexpr std::uint8_t kFormatVersion = 1;
constexpr std::uint8_t kFlagHasBase = 0x1;
constexpr std::uint8_t kFlagStoredRaw = 0x2;

void put_u32(std::vector<std::uint8_t>& out, std::size_t at,
             std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::size_t at,
             std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

std::uint64_t raw_checksum(std::span<const std::uint8_t> raw) {
  return fnv1a(std::as_bytes(raw));
}

// ---------------------------------------------------------------------------
// LZ block compression (LZSS-style). Token stream:
//   control c < 0x80: literal run of c+1 bytes follows verbatim;
//   control c >= 0x80: match of length (c - 0x80) + kMinMatch copied from
//     `offset` bytes back (2-byte little-endian offset, 1..65535).
// Matches may overlap their destination (RLE degenerates to offset 1).
// ---------------------------------------------------------------------------

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 0x7f;  // 131
constexpr std::size_t kMaxOffset = 0xffff;
constexpr std::size_t kHashBits = 13;

std::uint32_t lz_hash(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void flush_literals(std::vector<std::uint8_t>& out,
                    std::span<const std::uint8_t> in, std::size_t lit_start,
                    std::size_t lit_end) {
  while (lit_start < lit_end) {
    const std::size_t run = std::min<std::size_t>(0x80, lit_end - lit_start);
    out.push_back(static_cast<std::uint8_t>(run - 1));
    out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(lit_start),
               in.begin() + static_cast<std::ptrdiff_t>(lit_start + run));
    lit_start += run;
  }
}

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size() / 2 + 16);
  std::array<std::int64_t, (1u << kHashBits)> table;
  table.fill(-1);
  const std::size_t n = in.size();
  std::size_t i = 0;
  std::size_t lit_start = 0;
  while (n >= kMinMatch && i + kMinMatch <= n) {
    const std::uint32_t h = lz_hash(in.data() + i);
    const std::int64_t cand = table[h];
    table[h] = static_cast<std::int64_t>(i);
    if (cand >= 0 &&
        static_cast<std::size_t>(i - static_cast<std::size_t>(cand)) <=
            kMaxOffset &&
        std::memcmp(in.data() + cand, in.data() + i, kMinMatch) == 0) {
      std::size_t len = kMinMatch;
      const std::size_t limit = std::min(kMaxMatch, n - i);
      while (len < limit &&
             in[static_cast<std::size_t>(cand) + len] == in[i + len])
        ++len;
      flush_literals(out, in, lit_start, i);
      const std::size_t offset = i - static_cast<std::size_t>(cand);
      out.push_back(
          static_cast<std::uint8_t>(0x80 + (len - kMinMatch)));
      out.push_back(static_cast<std::uint8_t>(offset & 0xff));
      out.push_back(static_cast<std::uint8_t>((offset >> 8) & 0xff));
      i += len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(out, in, lit_start, n);
  return out;
}

bool lz_decompress(std::span<const std::uint8_t> in, std::size_t raw_size,
                   std::vector<std::uint8_t>& out, CodecError& err) {
  out.clear();
  out.reserve(raw_size);
  std::size_t i = 0;
  while (i < in.size()) {
    const std::uint8_t c = in[i++];
    if (c < 0x80) {
      const std::size_t run = static_cast<std::size_t>(c) + 1;
      if (i + run > in.size()) {
        err = CodecError::kTruncated;
        return false;
      }
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                 in.begin() + static_cast<std::ptrdiff_t>(i + run));
      i += run;
    } else {
      if (i + 2 > in.size()) {
        err = CodecError::kTruncated;
        return false;
      }
      const std::size_t len =
          static_cast<std::size_t>(c - 0x80) + kMinMatch;
      const std::size_t offset =
          static_cast<std::size_t>(in[i]) |
          (static_cast<std::size_t>(in[i + 1]) << 8);
      i += 2;
      if (offset == 0 || offset > out.size()) {
        err = CodecError::kCorrupt;
        return false;
      }
      // Byte-wise copy: overlapping matches (offset < len) are legal and
      // replicate the trailing window, exactly like RLE.
      std::size_t src = out.size() - offset;
      for (std::size_t k = 0; k < len; ++k) out.push_back(out[src + k]);
    }
    if (out.size() > raw_size) {
      err = CodecError::kCorrupt;
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Zero-run RLE for XOR deltas. Token stream:
//   control c < 0x80: literal run of c+1 bytes follows verbatim;
//   control c >= 0x80: run of (c - 0x80) + 1 zero bytes (1..128).
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> rle_compress(std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size() / 4 + 16);
  const std::size_t n = in.size();
  std::size_t i = 0;
  std::size_t lit_start = 0;
  while (i < n) {
    if (in[i] == 0) {
      std::size_t z = i;
      while (z < n && in[z] == 0) ++z;
      // Runs shorter than 3 zeros cost more as tokens than as literals.
      if (z - i >= 3) {
        flush_literals(out, in, lit_start, i);
        std::size_t left = z - i;
        while (left > 0) {
          const std::size_t run = std::min<std::size_t>(0x80, left);
          out.push_back(static_cast<std::uint8_t>(0x80 + (run - 1)));
          left -= run;
        }
        i = z;
        lit_start = i;
        continue;
      }
      i = z;
    } else {
      ++i;
    }
  }
  flush_literals(out, in, lit_start, n);
  return out;
}

bool rle_decompress(std::span<const std::uint8_t> in, std::size_t raw_size,
                    std::vector<std::uint8_t>& out, CodecError& err) {
  out.clear();
  out.reserve(raw_size);
  std::size_t i = 0;
  while (i < in.size()) {
    const std::uint8_t c = in[i++];
    if (c < 0x80) {
      const std::size_t run = static_cast<std::size_t>(c) + 1;
      if (i + run > in.size()) {
        err = CodecError::kTruncated;
        return false;
      }
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                 in.begin() + static_cast<std::ptrdiff_t>(i + run));
      i += run;
    } else {
      out.insert(out.end(), static_cast<std::size_t>(c - 0x80) + 1, 0);
    }
    if (out.size() > raw_size) {
      err = CodecError::kCorrupt;
      return false;
    }
  }
  return true;
}

std::vector<std::uint8_t> xor_bytes(std::span<const std::uint8_t> a,
                                    std::span<const std::uint8_t> b) {
  std::vector<std::uint8_t> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

std::vector<std::uint8_t> finish_block(std::span<const std::uint8_t> raw,
                                       Scheme scheme, bool has_base,
                                       std::uint32_t base_version,
                                       std::vector<std::uint8_t> payload) {
  bool stored_raw = false;
  if (payload.size() >= raw.size()) {
    // Compression expanded (incompressible input): store verbatim so an
    // encoded block never costs more than raw + header.
    payload.assign(raw.begin(), raw.end());
    stored_raw = true;
    has_base = false;
  }
  std::vector<std::uint8_t> block(kHeaderSize + payload.size());
  put_u32(block, 0, kMagic);
  block[4] = kFormatVersion;
  block[5] = static_cast<std::uint8_t>(scheme);
  block[6] = static_cast<std::uint8_t>((has_base ? kFlagHasBase : 0) |
                                       (stored_raw ? kFlagStoredRaw : 0));
  block[7] = 0;
  put_u64(block, 8, raw.size());
  put_u32(block, 16, has_base ? base_version : 0);
  put_u32(block, 20, 0);
  put_u64(block, 24, raw_checksum(raw));
  std::memcpy(block.data() + kHeaderSize, payload.data(), payload.size());
  return block;
}

}  // namespace

std::optional<Scheme> parse_scheme(const std::string& name) {
  if (name == "none") return Scheme::kNone;
  if (name == "lz") return Scheme::kLz;
  if (name == "delta") return Scheme::kDelta;
  if (name == "delta_lz") return Scheme::kDeltaLz;
  return std::nullopt;
}

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNone: return "none";
    case Scheme::kLz: return "lz";
    case Scheme::kDelta: return "delta";
    case Scheme::kDeltaLz: return "delta_lz";
  }
  return "?";
}

const char* codec_error_name(CodecError e) {
  switch (e) {
    case CodecError::kNotEncoded: return "not_encoded";
    case CodecError::kBadHeader: return "bad_header";
    case CodecError::kTruncated: return "truncated";
    case CodecError::kCorrupt: return "corrupt";
    case CodecError::kChecksum: return "checksum";
    case CodecError::kMissingBase: return "missing_base";
  }
  return "?";
}

bool is_encoded(std::span<const std::uint8_t> data) {
  return data.size() >= kHeaderSize && get_u32(data, 0) == kMagic &&
         data[4] == kFormatVersion;
}

std::optional<BlockInfo> inspect(std::span<const std::uint8_t> data) {
  if (!is_encoded(data)) return std::nullopt;
  const std::uint8_t scheme = data[5];
  if (scheme > static_cast<std::uint8_t>(Scheme::kDeltaLz))
    return std::nullopt;
  BlockInfo info;
  info.scheme = static_cast<Scheme>(scheme);
  info.has_base = (data[6] & kFlagHasBase) != 0;
  info.stored_raw = (data[6] & kFlagStoredRaw) != 0;
  info.raw_size = get_u64(data, 8);
  info.base_version = get_u32(data, 16);
  info.raw_checksum = get_u64(data, 24);
  info.payload_size = data.size() - kHeaderSize;
  return info;
}

std::vector<std::uint8_t> encode(std::span<const std::uint8_t> raw,
                                 Scheme scheme,
                                 std::span<const std::uint8_t> base,
                                 std::uint32_t base_version) {
  // Deltas only apply between equal-size payloads of the same region; a
  // mismatched base degrades to a full block of the same scheme family.
  const bool base_ok = !base.empty() && base.size() == raw.size();
  switch (scheme) {
    case Scheme::kNone:
      return finish_block(raw, Scheme::kNone, false, 0,
                          {raw.begin(), raw.end()});
    case Scheme::kLz:
      return finish_block(raw, Scheme::kLz, false, 0, lz_compress(raw));
    case Scheme::kDelta: {
      if (!base_ok) {
        // Full fallback still benefits from zero-run RLE (all-zero pages).
        return finish_block(raw, Scheme::kDelta, false, 0,
                            rle_compress(raw));
      }
      return finish_block(raw, Scheme::kDelta, true, base_version,
                          rle_compress(xor_bytes(raw, base)));
    }
    case Scheme::kDeltaLz: {
      std::vector<std::uint8_t> full = lz_compress(raw);
      if (!base_ok) {
        return finish_block(raw, Scheme::kDeltaLz, false, 0,
                            std::move(full));
      }
      std::vector<std::uint8_t> delta =
          lz_compress(xor_bytes(raw, base));
      if (delta.size() < full.size()) {
        return finish_block(raw, Scheme::kDeltaLz, true, base_version,
                            std::move(delta));
      }
      return finish_block(raw, Scheme::kDeltaLz, false, 0, std::move(full));
    }
  }
  return finish_block(raw, Scheme::kNone, false, 0, {raw.begin(), raw.end()});
}

DecodeResult decode(std::span<const std::uint8_t> data,
                    std::span<const std::uint8_t> base) {
  DecodeResult result;
  if (data.size() < kHeaderSize || get_u32(data, 0) != kMagic) {
    result.error = CodecError::kNotEncoded;
    return result;
  }
  const auto info = inspect(data);
  if (!info) {
    result.error = CodecError::kBadHeader;
    return result;
  }
  const std::span<const std::uint8_t> payload = data.subspan(kHeaderSize);
  // Every token in either stream expands to at most kMaxMatch bytes, so a
  // header claiming more output than the payload could possibly produce is
  // corrupt (e.g. a flipped bit in raw_size). Reject it *before* sizing
  // any buffer from it — a 2^60 raw_size must fail typed, not bad_alloc.
  if (info->raw_size > payload.size() * kMaxMatch) {
    result.error = CodecError::kCorrupt;
    return result;
  }
  CodecError err = CodecError::kCorrupt;
  if (info->stored_raw || info->scheme == Scheme::kNone) {
    if (payload.size() != info->raw_size) {
      result.error = CodecError::kTruncated;
      return result;
    }
    result.raw.assign(payload.begin(), payload.end());
  } else {
    const bool use_lz =
        info->scheme == Scheme::kLz || info->scheme == Scheme::kDeltaLz;
    const bool ok =
        use_lz ? lz_decompress(payload, info->raw_size, result.raw, err)
               : rle_decompress(payload, info->raw_size, result.raw, err);
    if (!ok) {
      result.error = err;
      result.raw.clear();
      return result;
    }
    if (info->has_base) {
      if (base.size() != info->raw_size) {
        result.error = CodecError::kMissingBase;
        result.raw.clear();
        return result;
      }
      for (std::size_t i = 0; i < result.raw.size(); ++i)
        result.raw[i] ^= base[i];
    }
  }
  if (result.raw.size() != info->raw_size) {
    result.error = CodecError::kCorrupt;
    result.raw.clear();
    return result;
  }
  if (raw_checksum(result.raw) != info->raw_checksum) {
    result.error = CodecError::kChecksum;
    result.raw.clear();
    return result;
  }
  return result;
}

}  // namespace dstage::wlog::codec
