#include "wlog/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dstage::wlog {

std::uint64_t event_metadata_bytes(const LogEvent& e) {
  // Descriptor (kind, app, version, chk id, 6 box coordinates) plus the
  // variable name and a DHT index entry. Matches a realistic serialized
  // record in the reference implementation.
  return 96 + e.var.size();
}

void EventQueue::record(LogEvent e) {
  metadata_bytes_ += event_metadata_bytes(e);
  events_.push_back(std::move(e));
}

std::size_t EventQueue::script_start() const {
  for (std::size_t i = events_.size(); i > 0; --i) {
    if (events_[i - 1].kind == EventKind::kCheckpoint) return i;
  }
  return 0;
}

std::size_t EventQueue::begin_replay() {
  cursor_ = script_start();
  replay_end_ = events_.size();
  // Skip non-data events inside the script window (recovery markers).
  std::size_t script_len = 0;
  for (std::size_t i = cursor_; i < replay_end_; ++i) {
    const EventKind k = events_[i].kind;
    if (k == EventKind::kPut || k == EventKind::kGet) ++script_len;
  }
  replaying_ = script_len > 0;
  if (!replaying_) {
    cursor_ = replay_end_;
  } else {
    skip_non_data();
  }
  return script_len;
}

const LogEvent* EventQueue::expected() const {
  if (!replaying_ || cursor_ >= replay_end_) return nullptr;
  return &events_[cursor_];
}

void EventQueue::advance() {
  if (!replaying_) throw std::logic_error("advance outside replay");
  ++cursor_;
  skip_non_data();
}

void EventQueue::skip_non_data() {
  while (cursor_ < replay_end_ &&
         events_[cursor_].kind != EventKind::kPut &&
         events_[cursor_].kind != EventKind::kGet) {
    ++cursor_;
  }
  if (cursor_ >= replay_end_) replaying_ = false;
}

std::size_t EventQueue::truncate_before_last_checkpoint() {
  const std::size_t start = script_start();
  if (start == 0) return 0;
  // Keep the checkpoint marker itself so later recoveries can anchor on it.
  const std::size_t drop = start - 1;
  for (std::size_t i = 0; i < drop; ++i) {
    // The tally must cover every retained record — it is rebuilt through
    // record() on both the normal path and a replayed QueueBackup, so a
    // shortfall here means some path mutated events_ without accounting.
    // Unsigned underflow would poison the governor's metadata accounting
    // for the rest of the run, so clamp (and assert in debug builds).
    const std::uint64_t bytes = event_metadata_bytes(events_.front());
    assert(metadata_bytes_ >= bytes &&
           "event-queue metadata tally out of sync with retained records");
    metadata_bytes_ -= std::min(metadata_bytes_, bytes);
    events_.pop_front();
  }
  // Shift replay bookkeeping left by the dropped prefix.
  if (cursor_ >= drop) {
    cursor_ -= drop;
  } else {
    cursor_ = 0;
  }
  if (replay_end_ >= drop) {
    replay_end_ -= drop;
  } else {
    replay_end_ = 0;
  }
  return drop;
}

bool EventQueue::has_checkpoint() const {
  for (const auto& e : events_) {
    if (e.kind == EventKind::kCheckpoint) return true;
  }
  return false;
}

Version EventQueue::last_checkpoint_version() const {
  for (std::size_t i = events_.size(); i > 0; --i) {
    if (events_[i - 1].kind == EventKind::kCheckpoint)
      return events_[i - 1].version;
  }
  return 0;
}

}  // namespace dstage::wlog
