#include "wlog/data_log.hpp"

#include <memory>
#include <span>
#include <stdexcept>

namespace dstage::wlog {

namespace {

/// Nominal-scale stored size of an encoded block: the encoded payload /
/// raw ratio applied to the chunk's nominal size (header overhead is part
/// of the per-object descriptor cost, not the payload). Never 0, so a
/// stored chunk always has a footprint.
std::uint64_t scaled_stored_bytes(std::uint64_t nominal,
                                  std::uint64_t payload_size,
                                  std::uint64_t raw_size) {
  if (raw_size == 0 || payload_size >= raw_size) return nominal;
  const unsigned __int128 scaled =
      static_cast<unsigned __int128>(nominal) * payload_size / raw_size;
  const auto stored = static_cast<std::uint64_t>(scaled);
  return stored == 0 ? 1 : stored;
}

std::span<const std::uint8_t> bytes_of(const staging::Chunk& c) {
  return c.data ? std::span<const std::uint8_t>{*c.data}
                : std::span<const std::uint8_t>{};
}

}  // namespace

std::vector<std::uint8_t> DataLog::base_bytes(
    const std::string& var, staging::Version base_version,
    const Box& region) const {
  for (const staging::Chunk& c : store_.chunks_of(var, base_version)) {
    if (c.region == region) return decode_piece(c);
  }
  return {};
}

std::vector<std::uint8_t> DataLog::decode_piece(
    const staging::Chunk& stored) const {
  if (!stored.data) return {};
  if (!codec::is_encoded(*stored.data)) {
    return *stored.data;  // raw retention (codec off, or pre-codec chunk)
  }
  const auto info = codec::inspect(*stored.data);
  std::vector<std::uint8_t> base;
  if (info && info->has_base) {
    base = base_bytes(stored.var, info->base_version, stored.region);
  }
  codec::DecodeResult result = codec::decode(*stored.data, base);
  if (!result.ok()) {
    // Never serve garbage: a log that cannot reproduce its retained bytes
    // is a correctness failure, not a degraded read.
    throw std::runtime_error(
        std::string("wlog codec: decode failed (") +
        codec::codec_error_name(*result.error) + ") for " + stored.var +
        " v" + std::to_string(stored.version));
  }
  return std::move(result.raw);
}

void DataLog::add(staging::Chunk chunk) {
  if (scheme_ == codec::Scheme::kNone || !chunk.data ||
      chunk.data->empty() || chunk.nominal_bytes == 0) {
    store_.put(std::move(chunk));
    return;
  }
  if (codec::is_encoded(*chunk.data)) {
    // Already-encoded block arriving from spill fault-in or resilver:
    // re-ingest as-is. Exported blocks are self-contained (full), so no
    // base is needed; recover the stored size if the sender dropped it.
    if (chunk.stored_bytes == 0) {
      if (const auto info = codec::inspect(*chunk.data)) {
        chunk.stored_bytes = scaled_stored_bytes(
            chunk.nominal_bytes, info->payload_size, info->raw_size);
      }
    }
    store_.put(std::move(chunk));
    return;
  }

  // Delta base: the newest older retained version holding this exact
  // region. Deltas stay single-level — if that piece is itself a delta,
  // chain through to its (full) base instead.
  std::vector<std::uint8_t> base;
  staging::Version base_version = 0;
  if (scheme_ == codec::Scheme::kDelta ||
      scheme_ == codec::Scheme::kDeltaLz) {
    const auto versions = store_.versions_of(chunk.var);
    for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
      if (*it >= chunk.version) continue;
      staging::Version candidate = *it;
      for (const staging::Chunk& prior : store_.chunks_of(chunk.var, *it)) {
        if (!(prior.region == chunk.region)) continue;
        if (prior.data && codec::is_encoded(*prior.data)) {
          if (const auto info = codec::inspect(*prior.data);
              info && info->has_base) {
            candidate = info->base_version;
          }
        }
        base = base_bytes(chunk.var, candidate, chunk.region);
        base_version = candidate;
        break;
      }
      if (!base.empty()) break;
    }
  }

  std::vector<std::uint8_t> block =
      codec::encode(bytes_of(chunk), scheme_, base, base_version);
  const auto info = codec::inspect(block);
  const std::uint64_t stored = scaled_stored_bytes(
      chunk.nominal_bytes, info ? info->payload_size : chunk.data->size(),
      chunk.data->size());
  codec_stats_.raw_bytes += chunk.nominal_bytes;
  codec_stats_.stored_bytes += stored;
  ++codec_stats_.blocks_encoded;
  if (info && info->has_base) ++codec_stats_.delta_blocks;
  chunk.data = std::make_shared<std::vector<std::uint8_t>>(std::move(block));
  chunk.stored_bytes = stored;
  store_.put(std::move(chunk));
}

std::vector<staging::Chunk> DataLog::get(const std::string& var,
                                         staging::Version version,
                                         const Box& region) const {
  std::vector<staging::Chunk> pieces = store_.get(var, version, region);
  for (staging::Chunk& piece : pieces) {
    if (!piece.data || !codec::is_encoded(*piece.data)) continue;
    // store_.get shares the stored buffer unsliced and keeps the source
    // region, so the piece decodes exactly like the retained chunk; the
    // clipped nominal size is already raw-scale.
    piece.data = std::make_shared<std::vector<std::uint8_t>>(
        decode_piece(piece));
    piece.stored_bytes = 0;
  }
  return pieces;
}

void DataLog::rebase_piece_full(const std::string& var,
                                staging::Version version,
                                const staging::Chunk& piece) {
  std::vector<std::uint8_t> raw = decode_piece(piece);
  std::vector<std::uint8_t> full = codec::encode(raw, scheme_);
  const auto full_info = codec::inspect(full);
  const std::uint64_t stored = scaled_stored_bytes(
      piece.nominal_bytes, full_info ? full_info->payload_size : raw.size(),
      raw.size());
  store_.rewrite_payload(
      var, version, piece.region,
      std::make_shared<std::vector<std::uint8_t>>(std::move(full)), stored);
  ++codec_stats_.rebases;
}

std::vector<staging::Chunk> DataLog::export_chunks(const std::string& var,
                                                   staging::Version version) {
  if (scheme_ != codec::Scheme::kNone) {
    for (const staging::Chunk& piece : store_.chunks_of(var, version)) {
      if (!piece.data || !codec::is_encoded(*piece.data)) continue;
      const auto info = codec::inspect(*piece.data);
      if (!info || !info->has_base) continue;
      rebase_piece_full(var, version, piece);
    }
  }
  return store_.chunks_of(var, version);
}

void DataLog::rebase_dependents(const std::string& var,
                                staging::Version version) {
  if (scheme_ == codec::Scheme::kNone) return;
  for (staging::Version w : store_.versions_of(var)) {
    if (w == version) continue;
    for (const staging::Chunk& piece : store_.chunks_of(var, w)) {
      if (!piece.data || !codec::is_encoded(*piece.data)) continue;
      const auto info = codec::inspect(*piece.data);
      if (!info || !info->has_base || info->base_version != version) continue;
      rebase_piece_full(var, w, piece);
    }
  }
}

std::vector<staging::Version> DataLog::versions_of(
    const std::string& var) const {
  return store_.versions_of(var);
}

std::vector<std::string> DataLog::variables() const {
  return store_.variables();
}

std::size_t DataLog::drop_upto(const std::string& var,
                               staging::Version watermark) {
  // Survivor deltas whose base is about to be reclaimed are rebased to
  // full blocks first (while the base is still present to decode against);
  // doomed deltas are simply dropped and never need their base again.
  if (scheme_ != codec::Scheme::kNone) {
    for (staging::Version w : store_.versions_of(var)) {
      if (w <= watermark) continue;
      for (const staging::Chunk& piece : store_.chunks_of(var, w)) {
        if (!piece.data || !codec::is_encoded(*piece.data)) continue;
        const auto info = codec::inspect(*piece.data);
        if (!info || !info->has_base || info->base_version > watermark)
          continue;
        rebase_piece_full(var, w, piece);
      }
    }
  }
  std::size_t dropped = 0;
  for (staging::Version v : store_.versions_of(var)) {
    if (v <= watermark && store_.drop_version(var, v)) ++dropped;
  }
  return dropped;
}

}  // namespace dstage::wlog
