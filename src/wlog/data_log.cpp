#include "wlog/data_log.hpp"

namespace dstage::wlog {

std::vector<staging::Version> DataLog::versions_of(
    const std::string& var) const {
  return store_.versions_of(var);
}

std::vector<std::string> DataLog::variables() const {
  return store_.variables();
}

std::size_t DataLog::drop_upto(const std::string& var,
                               staging::Version watermark) {
  std::size_t dropped = 0;
  for (staging::Version v : store_.versions_of(var)) {
    if (v <= watermark && store_.drop_version(var, v)) ++dropped;
  }
  return dropped;
}

}  // namespace dstage::wlog
