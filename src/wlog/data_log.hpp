// Payload retention for replay (the Data Logging Component's storage half).
// While the base ObjectStore keeps only the current coupling window, the
// data log retains every logged version that a rolled-back consumer might
// re-read, until the garbage collector proves it unreachable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "staging/object_store.hpp"
#include "staging/types.hpp"

namespace dstage::wlog {

class DataLog {
 public:
  DataLog() : store_(1 << 30) {}  // effectively unbounded window

  /// Retain a logged payload (bytes shared with the base store's buffer).
  void add(staging::Chunk chunk) { store_.put(std::move(chunk)); }

  [[nodiscard]] std::vector<staging::Chunk> get(const std::string& var,
                                                staging::Version version,
                                                const Box& region) const {
    return store_.get(var, version, region);
  }
  [[nodiscard]] bool covers(const std::string& var, staging::Version version,
                            const Box& region) const {
    return store_.covers(var, version, region);
  }

  /// Retained versions of `var`, ascending.
  [[nodiscard]] std::vector<staging::Version> versions_of(
      const std::string& var) const;
  [[nodiscard]] std::vector<std::string> variables() const;

  /// All retained pieces of one version, unclipped (spill-eviction helper).
  [[nodiscard]] std::vector<staging::Chunk> chunks_of(
      const std::string& var, staging::Version version) const {
    return store_.chunks_of(var, version);
  }
  /// True when the log retains any piece of (var, version).
  [[nodiscard]] bool has(const std::string& var,
                         staging::Version version) const {
    return !store_.chunks_of(var, version).empty();
  }
  /// Memory-governor eviction: drop one retained version because its
  /// payload now lives on the PFS spill gateway. Reported to the oracle's
  /// drop probe as kSpill (durability is preserved, just relocated).
  bool drop_spilled(const std::string& var, staging::Version version) {
    return store_.drop_version(var, version, staging::DropReason::kSpill);
  }

  /// Elastic rebalance: drop the retained pieces of (var, version) that
  /// the cell's new owner now logs. Reported as kResilver only when the
  /// version's last piece leaves (durability moved, not lost).
  std::size_t drop_resilvered(
      const std::string& var, staging::Version version,
      const std::function<bool(const staging::Chunk&)>& pred) {
    return store_.drop_pieces(var, version, pred,
                              staging::DropReason::kResilver);
  }

  /// Drop all retained versions of `var` up to and including `watermark`.
  /// Returns the number of versions dropped.
  std::size_t drop_upto(const std::string& var, staging::Version watermark);
  /// Drop versions newer than `version` (staging rollback support).
  std::size_t drop_above(staging::Version version) {
    return store_.drop_versions_above(version);
  }
  /// Tenant-scoped rollback: drop versions newer than `version`, but only
  /// of variables matching `var_pred` (a tenant-namespace predicate), so one
  /// tenant's rollback never truncates another tenant's retained history.
  std::size_t drop_above(
      staging::Version version,
      const std::function<bool(const std::string&)>& var_pred) {
    return store_.drop_versions_above(version, var_pred);
  }

  [[nodiscard]] std::uint64_t nominal_bytes() const {
    return store_.nominal_bytes();
  }
  /// Retained nominal bytes attributable to one tenant's variables.
  [[nodiscard]] std::uint64_t nominal_bytes(net::TenantId tenant) const {
    return store_.nominal_bytes(tenant);
  }
  [[nodiscard]] std::uint64_t physical_bytes() const {
    return store_.physical_bytes();
  }
  [[nodiscard]] std::size_t entry_count() const {
    return store_.object_count();
  }

  /// Consistency-oracle instrumentation, forwarded to the backing store:
  /// observes retained payloads and reclaimed versions without perturbing
  /// the simulation.
  void set_probes(staging::ObjectStore::PutProbe on_put,
                  staging::ObjectStore::DropProbe on_drop) {
    store_.set_probes(std::move(on_put), std::move(on_drop));
  }

 private:
  staging::ObjectStore store_;
};

}  // namespace dstage::wlog
