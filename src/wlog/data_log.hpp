// Payload retention for replay (the Data Logging Component's storage half).
// While the base ObjectStore keeps only the current coupling window, the
// data log retains every logged version that a rolled-back consumer might
// re-read, until the garbage collector proves it unreachable.
//
// With a codec scheme armed (WorkflowSpec::wlog.codec), payloads are
// encoded at retain time — LZ block compression, optionally XOR-deltaed
// against the previous retained version of the same region — and decoded
// transparently on every read. Deltas are single-level: a delta's base is
// always a full (non-delta) block, so a read needs at most one base
// lookup, and any drop path rebases dependent deltas to full blocks
// *before* their base leaves. Exported chunks (spill, resilver) are always
// self-contained: a delta is re-encoded as a full block first, so the
// receiving side can re-ingest or decode without access to this log.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "staging/object_store.hpp"
#include "staging/types.hpp"
#include "wlog/codec.hpp"

namespace dstage::wlog {

/// Codec activity counters (surfaced through StagingMetrics).
struct CodecStats {
  std::uint64_t raw_bytes = 0;      // nominal bytes presented for encoding
  std::uint64_t stored_bytes = 0;   // nominal-scale bytes after encoding
  std::uint64_t blocks_encoded = 0;
  std::uint64_t delta_blocks = 0;   // encoded against a prior version
  std::uint64_t rebases = 0;        // deltas re-encoded full before a drop
};

class DataLog {
 public:
  DataLog() : store_(1 << 30) {}  // effectively unbounded window

  /// Arm the payload codec; kNone (the default) retains raw buffers and
  /// leaves every path byte-identical to the pre-codec log.
  void set_codec(codec::Scheme scheme) { scheme_ = scheme; }
  [[nodiscard]] codec::Scheme codec_scheme() const { return scheme_; }
  [[nodiscard]] const CodecStats& codec_stats() const { return codec_stats_; }

  /// Retain a logged payload. With the codec off the bytes stay shared
  /// with the base store's buffer; with a scheme armed the log stores an
  /// encoded copy (an already-encoded chunk — spill fault-in, resilver —
  /// is re-ingested as-is).
  void add(staging::Chunk chunk);

  /// Decoded (raw-byte) pieces of (var, version) clipped to `region` —
  /// every read path (replay, slow consumer, recovery) sees exactly the
  /// bytes that were retained, whatever the stored representation.
  [[nodiscard]] std::vector<staging::Chunk> get(const std::string& var,
                                                staging::Version version,
                                                const Box& region) const;
  [[nodiscard]] bool covers(const std::string& var, staging::Version version,
                            const Box& region) const {
    return store_.covers(var, version, region);
  }

  /// Retained versions of `var`, ascending.
  [[nodiscard]] std::vector<staging::Version> versions_of(
      const std::string& var) const;
  [[nodiscard]] std::vector<std::string> variables() const;

  /// All retained pieces of one version, unclipped and in their stored
  /// representation (index walks; not for export — see export_chunks).
  [[nodiscard]] std::vector<staging::Chunk> chunks_of(
      const std::string& var, staging::Version version) const {
    return store_.chunks_of(var, version);
  }
  /// Self-contained pieces of one version for spill/resilver export:
  /// delta blocks are rebased to full blocks first (in place), so the
  /// receiver never needs this log's base versions to decode.
  [[nodiscard]] std::vector<staging::Chunk> export_chunks(
      const std::string& var, staging::Version version);
  /// True when the log retains any piece of (var, version).
  [[nodiscard]] bool has(const std::string& var,
                         staging::Version version) const {
    return !store_.chunks_of(var, version).empty();
  }
  /// Memory-governor eviction: drop one retained version because its
  /// payload now lives on the PFS spill gateway. Reported to the oracle's
  /// drop probe as kSpill (durability is preserved, just relocated).
  bool drop_spilled(const std::string& var, staging::Version version) {
    rebase_dependents(var, version);
    return store_.drop_version(var, version, staging::DropReason::kSpill);
  }

  /// Elastic rebalance: drop the retained pieces of (var, version) that
  /// the cell's new owner now logs. Reported as kResilver only when the
  /// version's last piece leaves (durability moved, not lost).
  std::size_t drop_resilvered(
      const std::string& var, staging::Version version,
      const std::function<bool(const staging::Chunk&)>& pred) {
    rebase_dependents(var, version);
    return store_.drop_pieces(var, version, pred,
                              staging::DropReason::kResilver);
  }

  /// Drop all retained versions of `var` up to and including `watermark`.
  /// Returns the number of versions dropped.
  std::size_t drop_upto(const std::string& var, staging::Version watermark);
  /// Drop versions newer than `version` (staging rollback support). No
  /// rebase is needed: a surviving delta's base is always older than the
  /// delta itself, hence also a survivor.
  std::size_t drop_above(staging::Version version) {
    return store_.drop_versions_above(version);
  }
  /// Tenant-scoped rollback: drop versions newer than `version`, but only
  /// of variables matching `var_pred` (a tenant-namespace predicate), so one
  /// tenant's rollback never truncates another tenant's retained history.
  std::size_t drop_above(
      staging::Version version,
      const std::function<bool(const std::string&)>& var_pred) {
    return store_.drop_versions_above(version, var_pred);
  }

  [[nodiscard]] std::uint64_t nominal_bytes() const {
    return store_.nominal_bytes();
  }
  /// Retained nominal bytes attributable to one tenant's variables.
  [[nodiscard]] std::uint64_t nominal_bytes(net::TenantId tenant) const {
    return store_.nominal_bytes(tenant);
  }
  [[nodiscard]] std::uint64_t physical_bytes() const {
    return store_.physical_bytes();
  }
  [[nodiscard]] std::size_t entry_count() const {
    return store_.object_count();
  }

  /// Consistency-oracle instrumentation, forwarded to the backing store:
  /// observes retained payloads and reclaimed versions without perturbing
  /// the simulation.
  void set_probes(staging::ObjectStore::PutProbe on_put,
                  staging::ObjectStore::DropProbe on_drop) {
    store_.set_probes(std::move(on_put), std::move(on_drop));
  }

 private:
  /// Decode one stored piece to its raw bytes (identity when not encoded).
  [[nodiscard]] std::vector<std::uint8_t> decode_piece(
      const staging::Chunk& stored) const;
  /// Raw bytes of the base piece (var, base_version, region), or empty.
  [[nodiscard]] std::vector<std::uint8_t> base_bytes(
      const std::string& var, staging::Version base_version,
      const Box& region) const;
  /// Re-encode one stored delta piece as a full block, in place.
  void rebase_piece_full(const std::string& var, staging::Version version,
                         const staging::Chunk& piece);
  /// Re-encode every delta whose base is (var, version) as a full block.
  void rebase_dependents(const std::string& var, staging::Version version);

  staging::ObjectStore store_;
  codec::Scheme scheme_ = codec::Scheme::kNone;
  CodecStats codec_stats_;
};

}  // namespace dstage::wlog
