// Payload codec for log-retained chunks: LZ-style block compression plus
// XOR delta encoding against the previous version of the same region key.
// The data log applies it at retain time; every read path (replay, slow
// consumer, spill fault-in, resilver, recovery pull) decodes transparently.
//
// Encoded blocks are self-describing: a fixed header carries the scheme,
// the raw size, the delta base (when any) and an FNV-1a checksum of the
// raw bytes, so a block can travel over spill/resilver traffic and be
// re-ingested — or rejected loudly — without side state. Decoding never
// returns garbage: any structural or checksum mismatch surfaces as a typed
// CodecError.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dstage::wlog::codec {

/// Compression scheme applied to a retained payload block.
enum class Scheme : std::uint8_t {
  kNone = 0,     // store raw (codec disabled)
  kLz = 1,       // LZ block compression of the full payload
  kDelta = 2,    // XOR delta vs. the previous version + zero-run RLE
  kDeltaLz = 3,  // XOR delta vs. the previous version, then LZ
};

/// Parse a scheme name ("none", "lz", "delta", "delta_lz"); empty optional
/// on an unknown name.
[[nodiscard]] std::optional<Scheme> parse_scheme(const std::string& name);
[[nodiscard]] const char* scheme_name(Scheme s);

/// Typed decode failure — the codec never hands back unverified bytes.
enum class CodecError {
  kNotEncoded,      // buffer does not start with an encoded-block header
  kBadHeader,       // magic/version/scheme field malformed
  kTruncated,       // payload shorter than the stream demands
  kCorrupt,         // structurally invalid compressed stream
  kChecksum,        // decoded bytes fail the header's raw checksum
  kMissingBase,     // delta block, but the caller supplied no/wrong base
};

[[nodiscard]] const char* codec_error_name(CodecError e);

struct DecodeResult {
  std::vector<std::uint8_t> raw;  // valid only when ok()
  std::optional<CodecError> error;
  [[nodiscard]] bool ok() const { return !error.has_value(); }
};

/// Fixed-size header at the front of every encoded block.
struct BlockInfo {
  Scheme scheme = Scheme::kNone;
  bool has_base = false;          // delta block: needs base_version's raw bytes
  bool stored_raw = false;        // encoder fell back to a verbatim copy
  std::uint64_t raw_size = 0;     // size of the decoded payload
  std::uint32_t base_version = 0; // delta base (same var, same region)
  std::uint64_t raw_checksum = 0; // FNV-1a over the raw bytes
  std::uint64_t payload_size = 0; // encoded bytes after the header
};

inline constexpr std::size_t kHeaderSize = 32;

/// True when `data` begins with a plausible encoded-block header.
[[nodiscard]] bool is_encoded(std::span<const std::uint8_t> data);

/// Parse the header of an encoded block. kNotEncoded/kBadHeader on failure.
[[nodiscard]] std::optional<BlockInfo> inspect(
    std::span<const std::uint8_t> data);

/// Encode `raw` under `scheme`. For the delta schemes, `base` is the raw
/// payload of `base_version` (same var, same region) — pass empty to force
/// a full (non-delta) block. The encoder falls back to a verbatim copy when
/// compression would expand, so the result never exceeds raw size by more
/// than the header. Returns the full block (header + payload).
[[nodiscard]] std::vector<std::uint8_t> encode(
    std::span<const std::uint8_t> raw, Scheme scheme,
    std::span<const std::uint8_t> base = {}, std::uint32_t base_version = 0);

/// Decode a block produced by encode(). For a delta block, `base` must be
/// the raw payload of header.base_version; non-delta blocks ignore it.
[[nodiscard]] DecodeResult decode(std::span<const std::uint8_t> data,
                                  std::span<const std::uint8_t> base = {});

}  // namespace dstage::wlog::codec
