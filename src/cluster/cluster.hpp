// Virtual cluster: named virtual processes (vprocs) pinned to nodes, each
// with a fabric endpoint and a cancel token. kill() models a fail-stop crash
// (ULFM-style: the process disappears mid-operation); revive() models a
// spare process joining the recovered communicator with a bumped
// incarnation number so stale state can be recognized.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/cancel.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"

namespace dstage::cluster {

using VprocId = int;

struct Vproc {
  VprocId id = -1;
  net::NodeId node = -1;
  net::EndpointId endpoint = -1;
  std::string name;
  bool alive = true;
  /// Bumped on every revive; lets peers discard stale replies.
  std::uint64_t incarnation = 0;
  std::unique_ptr<sim::CancelToken> token;
};

class Cluster {
 public:
  Cluster(sim::Engine& eng, net::Fabric& fabric)
      : eng_(&eng), fabric_(&fabric) {}
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Adds a physical node to the fabric.
  net::NodeId add_node() { return fabric_->add_node(); }

  /// Creates a vproc homed on `node` with its own endpoint and token.
  VprocId add_vproc(std::string name, net::NodeId node);

  [[nodiscard]] Vproc& vproc(VprocId id);
  [[nodiscard]] const Vproc& vproc(VprocId id) const;
  [[nodiscard]] int vproc_count() const {
    return static_cast<int>(vprocs_.size());
  }

  /// Execution context bound to a vproc's cancel token.
  [[nodiscard]] sim::Ctx ctx_for(VprocId id) {
    return sim::Ctx{eng_, vproc(id).token.get()};
  }

  /// Fail-stop crash: cancels the vproc's token (unwinding whatever it is
  /// doing) and notifies failure observers after the detection delay.
  void kill(VprocId id);

  /// Recycle the slot for a replacement process: re-arms the token and bumps
  /// the incarnation. The caller restarts the process logic via spawn().
  void revive(VprocId id);

  /// Registers a failure observer (e.g. the staging recovery manager);
  /// invoked `detection_delay` of virtual time after each kill.
  void on_failure(std::function<void(VprocId)> observer) {
    observers_.push_back(std::move(observer));
  }
  void set_detection_delay(sim::Duration d) { detection_delay_ = d; }

  [[nodiscard]] sim::Engine& engine() { return *eng_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] int kill_count() const { return kill_count_; }

 private:
  sim::Engine* eng_;
  net::Fabric* fabric_;
  std::vector<std::unique_ptr<Vproc>> vprocs_;
  std::vector<std::function<void(VprocId)>> observers_;
  sim::Duration detection_delay_ = sim::milliseconds(100);
  int kill_count_ = 0;
};

/// Pool of idle spare processes that recovery draws replacements from
/// (the paper's Process/Data Resilience Component maintains such a pool so
/// ULFM recovery does not depend on the job scheduler spawning processes).
class SparePool {
 public:
  explicit SparePool(int spares) : remaining_(spares) {}

  /// Take one spare; returns false when the pool is exhausted (recovery
  /// then falls back to the slower scheduler-spawn path).
  bool acquire() {
    if (remaining_ <= 0) return false;
    --remaining_;
    return true;
  }
  void refund() { ++remaining_; }
  [[nodiscard]] int remaining() const { return remaining_; }

 private:
  int remaining_;
};

}  // namespace dstage::cluster
