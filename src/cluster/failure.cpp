#include "cluster/failure.hpp"

#include <algorithm>
#include <stdexcept>

namespace dstage::cluster {

int FailureInjector::pick_group() {
  if (groups_.empty()) throw std::logic_error("no victim groups registered");
  std::vector<double> weights;
  weights.reserve(groups_.size());
  for (const auto& g : groups_) weights.push_back(g.weight);
  return rng_.weighted_pick(weights);
}

std::vector<PlannedFailure> FailureInjector::plan_uniform(
    int count, sim::TimePoint window_start, sim::TimePoint window_end) {
  if (window_end <= window_start)
    throw std::invalid_argument("empty failure window");
  std::vector<PlannedFailure> plan;
  plan.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto span =
        static_cast<std::uint64_t>((window_end - window_start).ns);
    const auto offset =
        static_cast<std::int64_t>(rng_.uniform_u64(0, span - 1));
    plan.push_back(PlannedFailure{
        window_start + sim::Duration{offset}, pick_group()});
  }
  std::sort(plan.begin(), plan.end(),
            [](const PlannedFailure& a, const PlannedFailure& b) {
              return a.at < b.at;
            });
  return plan;
}

std::vector<PlannedFailure> FailureInjector::plan_mtbf(
    sim::Duration mtbf, sim::TimePoint window_start,
    sim::TimePoint window_end) {
  if (mtbf.ns <= 0) throw std::invalid_argument("non-positive MTBF");
  std::vector<PlannedFailure> plan;
  sim::TimePoint t = window_start;
  while (true) {
    t = t + sim::from_seconds(rng_.exponential(mtbf.seconds()));
    if (t >= window_end) break;
    plan.push_back(PlannedFailure{t, pick_group()});
  }
  return plan;
}

void FailureInjector::arm(const std::vector<PlannedFailure>& plan,
                          std::function<void(int)> kill_one) {
  auto& eng = cluster_->engine();
  for (const auto& failure : plan) {
    if (failure.at < eng.now())
      throw std::invalid_argument("failure planned in the past");
    eng.schedule_call(failure.at - eng.now(),
                      [kill_one, g = failure.group] { kill_one(g); });
  }
}

}  // namespace dstage::cluster
