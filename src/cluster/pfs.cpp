#include "cluster/pfs.hpp"

namespace dstage::cluster {

sim::Task<void> Pfs::write(sim::Ctx ctx, std::uint64_t bytes) {
  auto slot = co_await channel_.acquire(ctx.tok, 1);
  co_await ctx.delay(params_.open_latency +
                     sim::from_seconds(static_cast<double>(bytes) /
                                       params_.write_bw));
  bytes_written_ += bytes;
}

sim::Task<void> Pfs::read(sim::Ctx ctx, std::uint64_t bytes) {
  auto slot = co_await channel_.acquire(ctx.tok, 1);
  co_await ctx.delay(params_.open_latency +
                     sim::from_seconds(static_cast<double>(bytes) /
                                       params_.read_bw));
  bytes_read_ += bytes;
}

}  // namespace dstage::cluster
