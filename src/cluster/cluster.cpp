#include "cluster/cluster.hpp"

namespace dstage::cluster {

VprocId Cluster::add_vproc(std::string name, net::NodeId node) {
  auto vp = std::make_unique<Vproc>();
  vp->id = static_cast<VprocId>(vprocs_.size());
  vp->node = node;
  vp->endpoint = fabric_->add_endpoint(node);
  vp->name = std::move(name);
  vp->token = std::make_unique<sim::CancelToken>();
  vprocs_.push_back(std::move(vp));
  return vprocs_.back()->id;
}

Vproc& Cluster::vproc(VprocId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= vprocs_.size())
    throw std::out_of_range("unknown vproc");
  return *vprocs_[static_cast<std::size_t>(id)];
}

const Vproc& Cluster::vproc(VprocId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= vprocs_.size())
    throw std::out_of_range("unknown vproc");
  return *vprocs_[static_cast<std::size_t>(id)];
}

void Cluster::kill(VprocId id) {
  Vproc& vp = vproc(id);
  if (!vp.alive) return;
  vp.alive = false;
  ++kill_count_;
  vp.token->cancel();
  for (auto& observer : observers_) {
    eng_->schedule_call(detection_delay_,
                        [observer, id] { observer(id); });
  }
}

void Cluster::revive(VprocId id) {
  Vproc& vp = vproc(id);
  if (vp.alive) throw std::logic_error("revive of a live vproc");
  vp.alive = true;
  ++vp.incarnation;
  vp.token->reset();
}

}  // namespace dstage::cluster
