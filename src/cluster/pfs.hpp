// Parallel-file-system model used for checkpoint traffic. A single FIFO
// bandwidth channel: concurrent writers serialize, so an aggregate of B
// bytes always takes B / bandwidth regardless of writer count — which is
// exactly what makes globally coordinated checkpoints (everyone writes at
// once) pay queueing delay that staggered uncoordinated checkpoints avoid.
#pragma once

#include <cstdint>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace dstage::cluster {

class Pfs {
 public:
  struct Params {
    double write_bw = 60e9;  // aggregate bytes/s (Lustre-like, scaled)
    double read_bw = 80e9;   // restart reads are typically faster
    sim::Duration open_latency = sim::milliseconds(5);
  };

  Pfs(sim::Engine& eng, Params params)
      : params_(params), channel_(eng, 1) {}

  /// Write `bytes` of checkpoint state; suspends for queueing + transfer.
  sim::Task<void> write(sim::Ctx ctx, std::uint64_t bytes);
  /// Read `bytes` of checkpoint state during restart.
  sim::Task<void> read(sim::Ctx ctx, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
  sim::Resource channel_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace dstage::cluster
