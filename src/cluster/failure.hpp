// Failure injection. Two modes, matching the paper's evaluation:
//   * planned — exactly N failures at times drawn uniformly inside the run
//     window ("a failure was randomly introduced ... within 40 time steps");
//   * mtbf — exponential inter-arrival times with a given MTBF, truncated to
//     the window (Table III's 600/300/200 s rows).
// Victims are picked with probability proportional to component core counts:
// bigger components absorb proportionally more faults.
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace dstage::cluster {

/// A victim class with a relative weight (core count).
struct VictimGroup {
  std::string name;
  double weight = 1.0;
};

struct PlannedFailure {
  sim::TimePoint at;
  int group = 0;  // index into the victim groups
};

class FailureInjector {
 public:
  FailureInjector(Cluster& cluster, Rng rng)
      : cluster_(&cluster), rng_(rng) {}

  void add_group(VictimGroup group) { groups_.push_back(std::move(group)); }

  /// Draw exactly `count` failure times uniformly in [window_start, window_end).
  std::vector<PlannedFailure> plan_uniform(int count,
                                           sim::TimePoint window_start,
                                           sim::TimePoint window_end);

  /// Draw failure times as an exponential arrival process with mean `mtbf`,
  /// truncated to the window.
  std::vector<PlannedFailure> plan_mtbf(sim::Duration mtbf,
                                        sim::TimePoint window_start,
                                        sim::TimePoint window_end);

  /// Schedule the planned failures; `kill_one(group_index)` is called at
  /// each failure time and decides which concrete vproc dies (the executor
  /// knows the live membership).
  void arm(const std::vector<PlannedFailure>& plan,
           std::function<void(int)> kill_one);

  [[nodiscard]] const std::vector<VictimGroup>& groups() const {
    return groups_;
  }

 private:
  int pick_group();

  Cluster* cluster_;
  Rng rng_;
  std::vector<VictimGroup> groups_;
};

}  // namespace dstage::cluster
