// Multi-level checkpoint hierarchy (DESIGN.md §12): node-local cache ->
// XOR partner group -> durable PFS, in the SCR mold. Each checkpoint *set*
// carries real (small, deterministic) member blocks so rebuilds and
// restarts verify bytes, not just protocol state. The level state machine:
//
//   kLocalWritten --encode--> kEncoded --begin_drain--> kDraining
//        |                                                  |
//        `--- node loss: one member block lost ---'   complete_drain
//                                                           v
//                                                     kPfsComplete
//
// Restart picks the newest set restartable at *some* level (cache when all
// blocks are intact, partner rebuild when exactly one is lost and parity
// exists, PFS only once the drain fully completed) — a set mid-drain is
// never observable as durable. Only kPfsComplete may advance the staging
// GC watermark (the drain agent's CkptDrainAck carries that promotion).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace dstage::ckpt {

/// Restart source, fastest first. Numeric values are stable: they are
/// recorded in traces and oracle restart records.
enum class CkptLevel : int { kCache = 0, kPartner = 1, kPfs = 2 };

const char* ckpt_level_name(CkptLevel level);

enum class SetState : int {
  kLocalWritten = 0,  // cached on the node, no redundancy yet
  kEncoded = 1,       // XOR parity distributed to the partner group
  kDraining = 2,      // async flush to PFS in flight
  kPfsComplete = 3,   // durable; may advance the GC watermark
};

/// What a restart actually used, plus whether the restored bytes matched
/// the checksum taken at write time.
struct Restore {
  CkptLevel level = CkptLevel::kPfs;
  bool checksum_ok = true;
};

/// One restart decision, kept for the oracle: restart-from-cache must
/// restore a point no older than the durable anchor, byte-verified.
struct RestartRecord {
  int app = -1;
  int ts = 0;
  CkptLevel level = CkptLevel::kPfs;
  bool checksum_ok = true;
  int pfs_ts_at_choice = 0;  // the classic durable anchor when deciding
};

struct CkptStats {
  std::uint64_t sets_written = 0;
  std::uint64_t sets_encoded = 0;
  std::uint64_t drains_completed = 0;
  std::uint64_t cache_restarts = 0;
  std::uint64_t partner_rebuilds = 0;
  std::uint64_t pfs_restarts = 0;
  std::uint64_t cache_evictions = 0;  // sets whose buffers were released
  std::uint64_t blocks_lost = 0;
  /// Sets that lost a second XOR member before their drain completed:
  /// unrestorable at any cached level, a loud degradation the runtime
  /// surfaces through the flight recorder.
  std::uint64_t double_losses = 0;
};

/// What the drain agent flushes next: always the oldest encoded set, so
/// the durable frontier advances in order and eviction below it is safe.
struct DrainItem {
  int app = -1;
  int ts = 0;
  std::uint64_t nominal_bytes = 0;
};

class CheckpointHierarchy {
 public:
  explicit CheckpointHierarchy(int xor_group);

  /// Physical block size per group member. Sets are *modeled* at their
  /// nominal size for every cost computation, but materialized small so a
  /// 2 GB checkpoint doesn't allocate 2 GB of simulator heap.
  static constexpr std::size_t kBlockBytes = 4096;

  /// Deterministic member-block content for (app, ts, index): rebuilds are
  /// checked byte-identical against regeneration, not just length.
  static std::vector<std::uint8_t> make_block(int app, int ts, int index);

  // --- write path --------------------------------------------------------
  /// Level 1: the component cached a checkpoint set on its node.
  void write_set(int app, int ts, std::uint64_t nominal_bytes);
  /// Level 2: distribute XOR parity to the partner group. Returns false
  /// when the set is missing or already lost a member (parity can no
  /// longer be formed) — the set then stays kLocalWritten.
  bool encode_set(int app, int ts);

  // --- drain path --------------------------------------------------------
  [[nodiscard]] std::optional<DrainItem> next_drain() const;
  void begin_drain(int app, int ts);
  /// Level 3 reached: the set is durable. Buffers of every strictly older
  /// set of this app are released — nothing may linger in cache once the
  /// durable frontier (and hence the GC watermark) passed it.
  void complete_drain(int app, int ts);

  // --- failure & restart -------------------------------------------------
  /// A node-level failure of `app`'s node: one member block of every set
  /// still holding buffers is lost (round-robin over members per failure,
  /// so campaigns exercise varied loss patterns).
  void on_node_failure(int app);
  /// Newest timestep restartable at any level, never older than the
  /// classic durable anchor `classic_pfs_ts`.
  [[nodiscard]] int best_restart_ts(int app, int classic_pfs_ts) const;
  /// Restore `app` at `ts`: picks the fastest level holding a complete
  /// set, performs the partner rebuild when needed, verifies bytes, and
  /// appends a RestartRecord for the oracle.
  Restore restore(int app, int ts, int classic_pfs_ts);

  // --- introspection -----------------------------------------------------
  [[nodiscard]] int xor_group() const { return group_; }
  [[nodiscard]] const CkptStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<RestartRecord>& restart_records() const {
    return records_;
  }
  /// Live (un-evicted, un-lost) member buffers for `app` — the leak probe
  /// the drain property tests watch.
  [[nodiscard]] std::size_t cached_blocks(int app) const;
  [[nodiscard]] std::optional<SetState> set_state(int app, int ts) const;

 private:
  struct Set {
    SetState state = SetState::kLocalWritten;
    std::uint64_t nominal_bytes = 0;
    std::vector<std::vector<std::uint8_t>> blocks;  // one per group member
    std::vector<bool> lost;
    int lost_count = 0;
    std::vector<std::uint8_t> parity;  // empty until encoded
    std::uint64_t checksum = 0;        // fnv1a over blocks, in member order
    bool evicted = false;              // buffers released (durable frontier)
  };

  /// Fastest level this set restarts from, or nullopt when unrestorable
  /// (e.g. two members lost before the drain completed).
  [[nodiscard]] std::optional<CkptLevel> restart_level(const Set& s) const;
  [[nodiscard]] std::uint64_t blocks_checksum(const Set& s) const;

  int group_;
  std::map<int, std::map<int, Set>> sets_;  // app -> ts -> set
  std::map<int, int> loss_cursor_;          // app -> round-robin member
  CkptStats stats_;
  std::vector<RestartRecord> records_;
};

}  // namespace dstage::ckpt
