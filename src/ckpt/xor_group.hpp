// XOR partner-group codec for the multi-level checkpoint hierarchy
// (DESIGN.md §12). A checkpoint set is striped across a small group of
// nodes; one parity block (the XOR of every member block) lives with the
// group so any *single* node loss is rebuilt from the survivors without
// touching the PFS. Two losses in one group exceed the code's tolerance
// and must degrade loudly to the durable level — the same contract the
// RS-coded staging fragments enforce via DataLossError.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dstage::ckpt {

/// Raised when a rebuild is attempted past the XOR code's single-loss
/// tolerance (>= 2 members missing, or parity missing alongside a member).
class XorLossError : public std::runtime_error {
 public:
  XorLossError(int missing, int group)
      : std::runtime_error("ckpt xor group: " + std::to_string(missing) +
                           " of " + std::to_string(group) +
                           " members lost exceeds single-loss tolerance"),
        missing_(missing),
        group_(group) {}

  [[nodiscard]] int missing() const { return missing_; }
  [[nodiscard]] int group() const { return group_; }

 private:
  int missing_ = 0;
  int group_ = 0;
};

/// XOR of all member blocks. Throws std::invalid_argument on an empty
/// group or mismatched block lengths.
std::vector<std::uint8_t> xor_encode(
    std::span<const std::vector<std::uint8_t>> blocks);

/// Rebuild the single missing member of a group. `blocks[i] == nullptr`
/// marks member i as lost; exactly one member may be missing. Returns the
/// reconstructed block (parity XOR survivors). Throws XorLossError when
/// zero survivable (>= 2 missing) and std::invalid_argument on length
/// mismatch or when nothing is missing.
std::vector<std::uint8_t> xor_rebuild(
    std::span<const std::vector<std::uint8_t>* const> blocks,
    const std::vector<std::uint8_t>& parity);

}  // namespace dstage::ckpt
