#include "ckpt/hierarchy.hpp"

#include <span>
#include <stdexcept>

#include "ckpt/xor_group.hpp"
#include "util/checksum.hpp"

namespace dstage::ckpt {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* ckpt_level_name(CkptLevel level) {
  switch (level) {
    case CkptLevel::kCache:
      return "cache";
    case CkptLevel::kPartner:
      return "partner";
    case CkptLevel::kPfs:
      return "pfs";
  }
  return "?";
}

CheckpointHierarchy::CheckpointHierarchy(int xor_group) : group_(xor_group) {
  if (group_ < 2) {
    throw std::invalid_argument("ckpt hierarchy: xor_group must be >= 2");
  }
}

std::vector<std::uint8_t> CheckpointHierarchy::make_block(int app, int ts,
                                                          int index) {
  std::vector<std::uint8_t> block(kBlockBytes);
  std::uint64_t seed =
      splitmix64((static_cast<std::uint64_t>(app) << 40) ^
                 (static_cast<std::uint64_t>(ts) << 16) ^
                 static_cast<std::uint64_t>(index));
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (i % 8 == 0) word = seed = splitmix64(seed);
    block[i] = static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
  return block;
}

std::uint64_t CheckpointHierarchy::blocks_checksum(const Set& s) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& block : s.blocks) {
    h = fnv1a(std::as_bytes(std::span{block}), h);
  }
  return h;
}

void CheckpointHierarchy::write_set(int app, int ts,
                                    std::uint64_t nominal_bytes) {
  Set set;
  set.nominal_bytes = nominal_bytes;
  set.blocks.reserve(static_cast<std::size_t>(group_));
  for (int i = 0; i < group_; ++i) set.blocks.push_back(make_block(app, ts, i));
  set.lost.assign(static_cast<std::size_t>(group_), false);
  set.checksum = blocks_checksum(set);
  sets_[app][ts] = std::move(set);
  ++stats_.sets_written;
}

bool CheckpointHierarchy::encode_set(int app, int ts) {
  auto app_it = sets_.find(app);
  if (app_it == sets_.end()) return false;
  auto it = app_it->second.find(ts);
  if (it == app_it->second.end()) return false;
  Set& set = it->second;
  // A member already lost means its shard never reached the group: parity
  // cannot be formed and the set stays at the node-local level.
  if (set.state != SetState::kLocalWritten || set.lost_count > 0 ||
      set.evicted) {
    return false;
  }
  set.parity = xor_encode(std::span{set.blocks});
  set.state = SetState::kEncoded;
  ++stats_.sets_encoded;
  return true;
}

std::optional<DrainItem> CheckpointHierarchy::next_drain() const {
  std::optional<DrainItem> oldest;
  for (const auto& [app, by_ts] : sets_) {
    for (const auto& [ts, set] : by_ts) {
      if (set.state != SetState::kEncoded) continue;
      if (!oldest || ts < oldest->ts) {
        oldest = DrainItem{app, ts, set.nominal_bytes};
      }
      break;  // by_ts is ordered: the first encoded set is this app's oldest
    }
  }
  return oldest;
}

void CheckpointHierarchy::begin_drain(int app, int ts) {
  Set& set = sets_.at(app).at(ts);
  if (set.state != SetState::kEncoded) {
    throw std::logic_error("ckpt hierarchy: begin_drain on un-encoded set");
  }
  set.state = SetState::kDraining;
}

void CheckpointHierarchy::complete_drain(int app, int ts) {
  auto& by_ts = sets_.at(app);
  Set& set = by_ts.at(ts);
  if (set.state != SetState::kDraining) {
    throw std::logic_error("ckpt hierarchy: complete_drain on idle set");
  }
  set.state = SetState::kPfsComplete;
  ++stats_.drains_completed;
  // The durable frontier passed every older set: release their buffers so
  // no cache entry outlives watermark passage (the no-leak rule the drain
  // property tests pin).
  for (auto& [older_ts, older] : by_ts) {
    if (older_ts >= ts || older.evicted) continue;
    older.blocks.clear();
    older.parity.clear();
    older.evicted = true;
    ++stats_.cache_evictions;
  }
}

void CheckpointHierarchy::on_node_failure(int app) {
  const int cursor = loss_cursor_[app]++;
  auto app_it = sets_.find(app);
  if (app_it == sets_.end()) return;
  const auto idx = static_cast<std::size_t>(cursor % group_);
  for (auto& [ts, set] : app_it->second) {
    if (set.evicted || set.lost[idx]) continue;
    set.lost[idx] = true;
    ++set.lost_count;
    set.blocks[idx].clear();  // the member's bytes really are gone
    ++stats_.blocks_lost;
    // A second member gone before the PFS flush: no cached level can
    // restore this set any more (XOR tolerates exactly one loss).
    if (set.lost_count == 2 && set.state != SetState::kPfsComplete)
      ++stats_.double_losses;
  }
}

std::optional<CkptLevel> CheckpointHierarchy::restart_level(
    const Set& s) const {
  if (!s.evicted && s.lost_count == 0 && !s.blocks.empty()) {
    return CkptLevel::kCache;
  }
  if (!s.evicted && s.lost_count == 1 && !s.parity.empty()) {
    return CkptLevel::kPartner;
  }
  if (s.state == SetState::kPfsComplete) return CkptLevel::kPfs;
  return std::nullopt;
}

int CheckpointHierarchy::best_restart_ts(int app, int classic_pfs_ts) const {
  auto app_it = sets_.find(app);
  if (app_it == sets_.end()) return classic_pfs_ts;
  for (auto it = app_it->second.rbegin(); it != app_it->second.rend(); ++it) {
    if (it->first <= classic_pfs_ts) break;  // the durable anchor wins
    if (restart_level(it->second)) return it->first;
  }
  return classic_pfs_ts;
}

Restore CheckpointHierarchy::restore(int app, int ts, int classic_pfs_ts) {
  Restore result;
  Set* set = nullptr;
  auto app_it = sets_.find(app);
  if (app_it != sets_.end()) {
    auto it = app_it->second.find(ts);
    if (it != app_it->second.end()) set = &it->second;
  }
  const std::optional<CkptLevel> level =
      set != nullptr ? restart_level(*set) : std::nullopt;
  if (!level) {
    // No hierarchy set survives at this point: the classic durable anchor
    // (including ts 0, before any checkpoint) restores from the PFS.
    result.level = CkptLevel::kPfs;
    ++stats_.pfs_restarts;
  } else {
    result.level = *level;
    switch (*level) {
      case CkptLevel::kCache:
        result.checksum_ok = blocks_checksum(*set) == set->checksum;
        ++stats_.cache_restarts;
        break;
      case CkptLevel::kPartner: {
        std::size_t missing = 0;
        std::vector<const std::vector<std::uint8_t>*> members;
        members.reserve(set->blocks.size());
        for (std::size_t i = 0; i < set->blocks.size(); ++i) {
          if (set->lost[i]) {
            missing = i;
            members.push_back(nullptr);
          } else {
            members.push_back(&set->blocks[i]);
          }
        }
        set->blocks[missing] = xor_rebuild(std::span{members}, set->parity);
        set->lost[missing] = false;
        set->lost_count = 0;
        result.checksum_ok = blocks_checksum(*set) == set->checksum;
        ++stats_.partner_rebuilds;
        break;
      }
      case CkptLevel::kPfs:
        ++stats_.pfs_restarts;
        break;
    }
  }
  records_.push_back(
      RestartRecord{app, ts, result.level, result.checksum_ok,
                    classic_pfs_ts});
  return result;
}

std::size_t CheckpointHierarchy::cached_blocks(int app) const {
  auto app_it = sets_.find(app);
  if (app_it == sets_.end()) return 0;
  std::size_t live = 0;
  for (const auto& [ts, set] : app_it->second) {
    for (const auto& block : set.blocks) live += block.empty() ? 0 : 1;
  }
  return live;
}

std::optional<SetState> CheckpointHierarchy::set_state(int app, int ts) const {
  auto app_it = sets_.find(app);
  if (app_it == sets_.end()) return std::nullopt;
  auto it = app_it->second.find(ts);
  if (it == app_it->second.end()) return std::nullopt;
  return it->second.state;
}

}  // namespace dstage::ckpt
