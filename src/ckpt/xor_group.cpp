#include "ckpt/xor_group.hpp"

namespace dstage::ckpt {

std::vector<std::uint8_t> xor_encode(
    std::span<const std::vector<std::uint8_t>> blocks) {
  if (blocks.empty()) {
    throw std::invalid_argument("ckpt xor group: cannot encode empty group");
  }
  std::vector<std::uint8_t> parity(blocks[0].size(), 0);
  for (const auto& block : blocks) {
    if (block.size() != parity.size()) {
      throw std::invalid_argument(
          "ckpt xor group: member blocks must be equal length");
    }
    for (std::size_t i = 0; i < block.size(); ++i) parity[i] ^= block[i];
  }
  return parity;
}

std::vector<std::uint8_t> xor_rebuild(
    std::span<const std::vector<std::uint8_t>* const> blocks,
    const std::vector<std::uint8_t>& parity) {
  int missing = 0;
  for (const auto* block : blocks) {
    if (block == nullptr) ++missing;
  }
  if (missing >= 2) {
    throw XorLossError(missing, static_cast<int>(blocks.size()));
  }
  if (missing == 0) {
    throw std::invalid_argument(
        "ckpt xor group: rebuild called with no member missing");
  }
  std::vector<std::uint8_t> rebuilt = parity;
  for (const auto* block : blocks) {
    if (block == nullptr) continue;
    if (block->size() != rebuilt.size()) {
      throw std::invalid_argument(
          "ckpt xor group: member blocks must match parity length");
    }
    for (std::size_t i = 0; i < block->size(); ++i) rebuilt[i] ^= (*block)[i];
  }
  return rebuilt;
}

}  // namespace dstage::ckpt
