// Asynchronous checkpoint drain agent (DESIGN.md §12). One vproc serves
// the whole workflow: component clients announce freshly cached checkpoint
// sets (CkptStoreLocal, then the CkptXorShard parity distribution), and a
// single-flight drain loop flushes encoded sets oldest-first to the PFS —
// paying the cluster::Pfs cost model on the same FIFO channel as classic
// checkpoints and spill traffic, and yielding to staging memory-governor
// pressure so background durability never starves foreground puts. When a
// flush lands, the agent broadcasts CkptDrainAck to every staging server:
// the durable promotion that lets the GC watermark advance.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/hierarchy.hpp"
#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "net/rpc.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observability.hpp"

namespace dstage::ckpt {

struct DrainAgentStats {
  std::uint64_t store_notices = 0;   // CkptStoreLocal messages seen
  std::uint64_t shards_encoded = 0;  // CkptXorShard messages applied
  std::uint64_t drains_completed = 0;
  std::uint64_t drain_bytes = 0;      // nominal bytes flushed to the PFS
  std::uint64_t pressure_stalls = 0;  // backoffs taken under governor load
  std::uint64_t acks_sent = 0;        // CkptDrainAck broadcasts (per server)
};

class DrainAgent {
 public:
  DrainAgent(cluster::Cluster& cluster, cluster::VprocId vproc,
             cluster::Pfs& pfs, CheckpointHierarchy& hierarchy);

  /// Spawn the request-processing loop.
  void start();

  [[nodiscard]] net::EndpointId endpoint() const;
  [[nodiscard]] const DrainAgentStats& stats() const { return stats_; }

  /// Staging servers to broadcast the durable promotion to.
  void set_server_endpoints(std::vector<net::EndpointId> endpoints) {
    server_endpoints_ = std::move(endpoints);
  }
  /// Memory-governor pressure probe (max over servers of governed bytes /
  /// soft watermark); the drain backs off while it reads above 1.0. Null or
  /// unset means no pressure.
  void set_pressure(std::function<double()> pressure) {
    pressure_ = std::move(pressure);
  }
  /// Fired after each completed flush, before the server broadcast — the
  /// runtime advances the component's durable anchor here.
  void set_on_complete(std::function<void(int app, int ts)> on_complete) {
    on_complete_ = std::move(on_complete);
  }
  /// Attach the run's observability bundle (null = off).
  void set_obs(obs::Observability* obs, std::string track) {
    obs_ = obs;
    obs_track_ = std::move(track);
  }
  /// Attach the always-on flight recorder (null = off).
  void set_recorder(obs::FlightRecorder* recorder, std::uint32_t track) {
    recorder_ = recorder;
    recorder_track_ = track;
  }

 private:
  sim::Task<void> run();
  /// Single-flight: flush encoded sets oldest-first until none remain.
  sim::Task<void> drain_loop();

  [[nodiscard]] sim::Ctx ctx() { return cluster_->ctx_for(vproc_); }

  cluster::Cluster* cluster_;
  cluster::VprocId vproc_;
  cluster::Pfs* pfs_;
  CheckpointHierarchy* hierarchy_;
  net::Rpc rpc_;
  std::vector<net::EndpointId> server_endpoints_;
  std::function<double()> pressure_;
  std::function<void(int, int)> on_complete_;
  bool draining_ = false;
  DrainAgentStats stats_;
  obs::Observability* obs_ = nullptr;
  std::string obs_track_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint32_t recorder_track_ = 0;
};

}  // namespace dstage::ckpt
