// Vaidya-style adaptive checkpoint-interval policy (SCR_Need_checkpoint).
// Given a failure rate and a per-checkpoint cost, the first-order optimum
// interval between checkpoints is T_opt = sqrt(2 * delta * MTBF) (Young's
// formula; Vaidya's refinement differs only in higher-order terms the cost
// model below can't resolve). The scheme layer asks `need_checkpoint` at
// each timestep boundary instead of taking `ts % period == 0`; with no
// failure statistics the policy degrades to the configured fixed period, so
// plugging it in is never worse-informed than the paper's static scheme.
#pragma once

namespace dstage::ckpt {

class AdaptiveInterval {
 public:
  struct Params {
    double mtbf_s = 0;           // mean time between failures (0 = unknown)
    double ckpt_cost_s = 0;      // delta: time to take one checkpoint
    double compute_per_ts_s = 0; // timestep length, to quantize the optimum
    int fixed_period = 1;        // fallback when stats are absent
  };

  explicit AdaptiveInterval(Params params);

  /// The closed-form optimum interval in seconds (0 when stats are absent).
  [[nodiscard]] double optimum_s() const;

  /// The optimum quantized to whole timesteps, never below 1; the fixed
  /// period when failure statistics are absent or degenerate.
  [[nodiscard]] int interval_ts() const;

  /// SCR_Need_checkpoint: has the adaptive interval elapsed since the last
  /// checkpoint anchor?
  [[nodiscard]] bool need_checkpoint(int ts, int last_ckpt_ts) const;

 private:
  Params params_;
};

}  // namespace dstage::ckpt
