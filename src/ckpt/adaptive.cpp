#include "ckpt/adaptive.hpp"

#include <algorithm>
#include <cmath>

namespace dstage::ckpt {

AdaptiveInterval::AdaptiveInterval(Params params) : params_(params) {}

double AdaptiveInterval::optimum_s() const {
  if (params_.mtbf_s <= 0 || params_.ckpt_cost_s <= 0) return 0;
  return std::sqrt(2.0 * params_.ckpt_cost_s * params_.mtbf_s);
}

int AdaptiveInterval::interval_ts() const {
  const double opt = optimum_s();
  if (opt <= 0 || params_.compute_per_ts_s <= 0) {
    return std::max(1, params_.fixed_period);
  }
  return std::max(
      1, static_cast<int>(std::lround(opt / params_.compute_per_ts_s)));
}

bool AdaptiveInterval::need_checkpoint(int ts, int last_ckpt_ts) const {
  return ts - last_ckpt_ts >= interval_ts();
}

}  // namespace dstage::ckpt
