#include "ckpt/drain.hpp"

#include <algorithm>
#include <utility>
#include <variant>

#include "net/message.hpp"
#include "sim/spawn.hpp"

namespace dstage::ckpt {

using net::CkptDrainAck;
using net::CkptStoreLocal;
using net::CkptXorShard;

DrainAgent::DrainAgent(cluster::Cluster& cluster, cluster::VprocId vproc,
                       cluster::Pfs& pfs, CheckpointHierarchy& hierarchy)
    : cluster_(&cluster),
      vproc_(vproc),
      pfs_(&pfs),
      hierarchy_(&hierarchy),
      rpc_(cluster.fabric(), cluster.vproc(vproc).endpoint) {}

net::EndpointId DrainAgent::endpoint() const {
  return cluster_->vproc(vproc_).endpoint;
}

void DrainAgent::start() { sim::spawn(cluster_->engine(), run()); }

sim::Task<void> DrainAgent::run() {
  auto& ep = cluster_->fabric().endpoint(endpoint());
  sim::Ctx c = ctx();
  for (;;) {
    net::Packet packet = co_await ep.recv(c.tok);
    net::Message msg = std::move(packet.payload);
    if (auto* store = std::get_if<CkptStoreLocal>(&msg)) {
      // Level-0 bookkeeping only: the scheme wrote the cache entry into the
      // hierarchy synchronously; this notice just tells the drain the set
      // exists.
      ++stats_.store_notices;
      if (recorder_ != nullptr)
        recorder_->record(recorder_track_, cluster_->engine().now(),
                          obs::FrKind::kCkptStore, std::to_string(store->app),
                          static_cast<std::int64_t>(store->version));
      if (obs_ != nullptr)
        obs_->metrics().counter("ckpt.store_notices", obs_track_).inc();
    } else if (auto* shard = std::get_if<CkptXorShard>(&msg)) {
      // The parity distribution landed: the set is now partner-protected
      // and eligible for the background PFS flush.
      if (hierarchy_->encode_set(shard->app, static_cast<int>(shard->version))) {
        ++stats_.shards_encoded;
        if (recorder_ != nullptr)
          recorder_->record(recorder_track_, cluster_->engine().now(),
                            obs::FrKind::kCkptEncode,
                            std::to_string(shard->app),
                            static_cast<std::int64_t>(shard->version),
                            static_cast<std::int64_t>(shard->nominal_bytes));
        if (obs_ != nullptr) {
          obs_->metrics().counter("ckpt.shards_encoded", obs_track_).inc();
          // Zero-length marker span: encoding takes no agent-side virtual
          // time, but the trace should still show when parity landed.
          const obs::SpanId enc = obs_->tracer().begin(
              obs_track_, "encode", obs::Phase::kDrain,
              cluster_->engine().now());
          obs_->tracer().end(enc, cluster_->engine().now());
        }
        if (!draining_) {
          draining_ = true;
          sim::spawn(cluster_->engine(), drain_loop());
        }
      }
    }
    // Anything else is misrouted: the drain agent speaks only the ckpt
    // vocabulary, and dropping keeps it inert when the hierarchy is off.
  }
}

sim::Task<void> DrainAgent::drain_loop() {
  sim::Ctx c = ctx();
  while (auto next = hierarchy_->next_drain()) {
    // Yield to staging memory pressure: durability is background work, and
    // the governor's foreground puts win the PFS channel. Escalating
    // backoff, capped so a permanently loaded governor still drains.
    int backoff = 1;
    while (pressure_ && pressure_() > 1.0) {
      ++stats_.pressure_stalls;
      if (obs_ != nullptr)
        obs_->metrics().counter("ckpt.pressure_stalls", obs_track_).inc();
      co_await c.delay(sim::milliseconds(backoff));
      backoff = std::min(backoff * 2, 64);
    }
    hierarchy_->begin_drain(next->app, next->ts);
    obs::SpanId span = 0;
    if (obs_ != nullptr)
      span = obs_->tracer().begin(obs_track_, "drain", obs::Phase::kDrain,
                                  cluster_->engine().now());
    co_await pfs_->write(c, next->nominal_bytes);
    hierarchy_->complete_drain(next->app, next->ts);
    ++stats_.drains_completed;
    stats_.drain_bytes += next->nominal_bytes;
    if (recorder_ != nullptr)
      recorder_->record(recorder_track_, cluster_->engine().now(),
                        obs::FrKind::kCkptDrain, std::to_string(next->app),
                        static_cast<std::int64_t>(next->ts),
                        static_cast<std::int64_t>(next->nominal_bytes));
    if (obs_ != nullptr) {
      obs_->tracer().end(span, cluster_->engine().now());
      obs_->metrics().counter("ckpt.drains", obs_track_).inc();
      obs_->metrics()
          .counter("ckpt.drain_bytes", obs_track_)
          .inc(next->nominal_bytes);
    }
    if (on_complete_) on_complete_(next->app, next->ts);
    // Durable promotion: only now may the staging GC watermark advance past
    // this checkpoint (the cached copy alone is not crash-consistent).
    for (net::EndpointId server : server_endpoints_) {
      co_await rpc_.send(
          c, server,
          net::Message{
              CkptDrainAck{next->app, static_cast<net::Version>(next->ts)}});
      ++stats_.acks_sent;
    }
  }
  draining_ = false;
}

}  // namespace dstage::ckpt
