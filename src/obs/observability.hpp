// Per-run observability bundle: one MetricsRegistry plus one SpanTracer,
// owned by the Runtime and handed to every layer through RuntimeServices
// (or, for the staging servers, a set_obs() call at assembly time). The
// object only exists when ObsConfig::enabled is set on a build with
// observability compiled in; a null pointer is the disabled state, so the
// hot path pays a single pointer test.
#pragma once

#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dstage::obs {

class Observability {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] SpanTracer& tracer() { return tracer_; }
  [[nodiscard]] const SpanTracer& tracer() const { return tracer_; }

 private:
  MetricsRegistry metrics_;
  SpanTracer tracer_;
};

}  // namespace dstage::obs
