// Causal span tracing over virtual time. A span is an interval on a named
// track (one track per application component, staging server, or the
// "workflow" itself) with an optional parent span, so a recovery's critical
// path — detect → ULFM → restore → replay — is reconstructable as a tree.
// Span ids are assigned in begin() order; since the simulation engine is
// single-threaded and deterministic, the whole span stream is a pure
// function of the WorkflowSpec, exactly like the core Trace.
//
// Recording never consumes virtual time, so enabling the tracer cannot
// perturb a run's timing, metrics, or trace digest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dstage::obs {

/// Span identifier; 0 means "no span" (and "no parent").
using SpanId = std::uint64_t;

/// Execution-time phase a span's duration is attributed to in the
/// Fig. 9(e)-style breakdown. kOther covers intervals no phase claims
/// (coupling waits, request service on server tracks, ...).
enum class Phase {
  kOther,
  kRead,
  kCompute,
  kWrite,
  kCheckpoint,
  kRestart,   // failure detection + ULFM + state restore (+ failover)
  kReplay,    // staging re-attach + log replay
  kDrain,     // async checkpoint-set flush to the PFS (encode + write)
  kSpill,     // memory-governor spill to / fetch-back from the gateway
  kResilver,  // elastic-membership fragment hand-off streams
};

const char* phase_name(Phase p);

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  std::string track;
  std::string name;
  Phase phase = Phase::kOther;
  sim::TimePoint start{};
  sim::TimePoint end{};
  std::int64_t value = 0;  // event-specific detail (timestep, bytes, ...)
  bool open = true;

  [[nodiscard]] sim::Duration duration() const { return end - start; }
};

/// Point event on a track (failures, watermark advances, ...).
struct Instant {
  std::string track;
  std::string name;
  sim::TimePoint at{};
  std::int64_t value = 0;
};

class SpanTracer {
 public:
  /// Open a span. `parent` links causally (0 for a root span).
  SpanId begin(std::string track, std::string name, Phase phase,
               sim::TimePoint at, SpanId parent = 0, std::int64_t value = 0);

  /// Close a span. Ignores id 0 and already-closed spans, so callers can
  /// close unconditionally on every exit path.
  void end(SpanId id, sim::TimePoint at);

  void instant(std::string track, std::string name, sim::TimePoint at,
               std::int64_t value = 0);

  /// Close every open span on `track` at `at`, innermost (most recently
  /// begun) first — used when a virtual process is killed mid-activity so
  /// exported begin/end pairs stay matched.
  void end_open_for_track(const std::string& track, sim::TimePoint at);

  /// Close every open span (run teardown safety net).
  void end_all(sim::TimePoint at);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<Instant>& instants() const {
    return instants_;
  }
  [[nodiscard]] const Span* find(SpanId id) const;
  [[nodiscard]] std::vector<const Span*> children_of(SpanId id) const;
  [[nodiscard]] std::size_t open_count() const;

  /// Track names in first-appearance order (stable tid assignment for the
  /// Chrome trace export).
  [[nodiscard]] std::vector<std::string> tracks() const;

 private:
  std::vector<Span> spans_;  // spans_[id - 1] is span `id`
  std::vector<Instant> instants_;
};

}  // namespace dstage::obs
