#include "obs/report.hpp"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <ostream>

namespace dstage::obs {

namespace {

constexpr std::array<Phase, kPhaseCount> kColumnOrder = {
    Phase::kRead,    Phase::kCompute, Phase::kWrite,    Phase::kCheckpoint,
    Phase::kRestart, Phase::kReplay,  Phase::kDrain,    Phase::kSpill,
    Phase::kResilver, Phase::kOther,
};

double sec(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }

struct SweepEvent {
  std::int64_t ts = 0;
  bool is_begin = false;
  const Span* span = nullptr;
};

TrackBreakdown breakdown_track(const std::string& track,
                               const std::vector<const Span*>& spans) {
  TrackBreakdown out;
  out.track = track;

  std::vector<SweepEvent> events;
  events.reserve(spans.size() * 2);
  for (const Span* s : spans) {
    if (s->end.ns <= s->start.ns) continue;  // zero width: nothing to charge
    events.push_back(SweepEvent{s->start.ns, true, s});
    events.push_back(SweepEvent{s->end.ns, false, s});
  }
  if (events.empty()) return out;

  // Ends before begins at equal timestamps; among simultaneous begins the
  // parent (smaller id) opens first, among simultaneous ends the innermost
  // (larger id) closes first.
  std::sort(events.begin(), events.end(),
            [](const SweepEvent& a, const SweepEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.is_begin != b.is_begin) return !a.is_begin;
              if (a.is_begin) return a.span->id < b.span->id;
              return a.span->id > b.span->id;
            });

  std::vector<const Span*> stack;
  std::int64_t prev = events.front().ts;
  const std::int64_t first = events.front().ts;
  std::int64_t last = first;
  for (const SweepEvent& ev : events) {
    const std::int64_t dt = ev.ts - prev;
    if (dt > 0) {
      const Phase p = stack.empty() ? Phase::kOther : stack.back()->phase;
      out.phase_ns[static_cast<std::size_t>(p)] += dt;
    }
    prev = ev.ts;
    last = std::max(last, ev.ts);
    if (ev.is_begin) {
      stack.push_back(ev.span);
    } else {
      // Proper nesting means the span is on top; search defensively so a
      // malformed stream degrades instead of corrupting the stack.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (*it == ev.span) {
          stack.erase(std::next(it).base());
          break;
        }
      }
    }
  }
  out.total_ns = last - first;
  return out;
}

std::int64_t chain_ns(const PathNode& n) {
  std::int64_t best = 0;
  for (const PathNode& c : n.children) best = std::max(best, chain_ns(c));
  return n.span->duration().ns + best;
}

void mark_critical(PathNode& n) {
  n.on_critical_path = true;
  PathNode* best = nullptr;
  std::int64_t best_ns = -1;
  for (PathNode& c : n.children) {
    const std::int64_t v = chain_ns(c);
    if (v > best_ns) {
      best_ns = v;
      best = &c;
    }
  }
  if (best != nullptr) mark_critical(*best);
}

PathNode build_node(const SpanTracer& tracer, const Span* s) {
  PathNode n;
  n.span = s;
  for (const Span* c : tracer.children_of(s->id)) {
    n.children.push_back(build_node(tracer, c));
  }
  return n;
}

void print_node(std::ostream& os, const PathNode& n, const std::string& prefix,
                bool last) {
  os << prefix << (last ? "└─ " : "├─ ") << n.span->name << "  "
     << std::fixed << std::setprecision(6) << n.span->duration().seconds()
     << "s" << (n.on_critical_path ? "  *" : "") << "\n";
  const std::string child_prefix = prefix + (last ? "   " : "│  ");
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    print_node(os, n.children[i], child_prefix, i + 1 == n.children.size());
  }
}

void collect_critical(const PathNode& n, std::vector<std::string>& names) {
  for (const PathNode& c : n.children) {
    if (c.on_critical_path) {
      names.push_back(c.span->name);
      collect_critical(c, names);
    }
  }
}

}  // namespace

std::int64_t TrackBreakdown::attributed_ns() const {
  return std::accumulate(phase_ns.begin(), phase_ns.end(),
                         static_cast<std::int64_t>(0));
}

Breakdown phase_breakdown(const SpanTracer& tracer) {
  Breakdown out;
  for (const std::string& track : tracer.tracks()) {
    std::vector<const Span*> spans;
    for (const Span& s : tracer.spans()) {
      if (s.track == track) spans.push_back(&s);
    }
    if (spans.empty()) continue;
    out.tracks.push_back(breakdown_track(track, spans));
  }
  for (const Span& s : tracer.spans()) {
    out.span_horizon_ns = std::max(out.span_horizon_ns, s.end.ns);
  }
  return out;
}

void print_breakdown(std::ostream& os, const Breakdown& b) {
  const int name_w = 18;
  const int col_w = 11;
  os << std::left << std::setw(name_w) << "track" << std::right;
  for (Phase p : kColumnOrder) os << std::setw(col_w) << phase_name(p);
  os << std::setw(col_w) << "total" << "\n";

  std::array<std::int64_t, kPhaseCount> sum{};
  std::int64_t sum_total = 0;
  auto row = [&](const std::string& name,
                 const std::array<std::int64_t, kPhaseCount>& phases,
                 std::int64_t total) {
    os << std::left << std::setw(name_w) << name << std::right << std::fixed
       << std::setprecision(3);
    for (Phase p : kColumnOrder) {
      os << std::setw(col_w) << sec(phases[static_cast<std::size_t>(p)]);
    }
    os << std::setw(col_w) << sec(total) << "\n";
  };
  for (const TrackBreakdown& t : b.tracks) {
    row(t.track, t.phase_ns, t.total_ns);
    for (std::size_t i = 0; i < kPhaseCount; ++i) sum[i] += t.phase_ns[i];
    sum_total += t.total_ns;
  }
  row("TOTAL", sum, sum_total);
  os << std::fixed << std::setprecision(3)
     << "span horizon (virtual time): " << sec(b.span_horizon_ns) << "s\n";
}

Json breakdown_to_json(const Breakdown& b) {
  Json doc = Json::object();
  doc.set("span_horizon_s", sec(b.span_horizon_ns));
  Json tracks = Json::array();
  for (const TrackBreakdown& t : b.tracks) {
    Json row = Json::object();
    row.set("track", t.track);
    for (Phase p : kColumnOrder) {
      row.set(std::string(phase_name(p)) + "_s",
              sec(t.phase_ns[static_cast<std::size_t>(p)]));
    }
    row.set("total_s", sec(t.total_ns));
    tracks.push(std::move(row));
  }
  doc.set("tracks", std::move(tracks));
  return doc;
}

std::vector<PathNode> recovery_paths(const SpanTracer& tracer) {
  std::vector<PathNode> out;
  for (const Span& s : tracer.spans()) {
    if (s.parent == 0 && s.name == "recovery") {
      out.push_back(build_node(tracer, &s));
      mark_critical(out.back());
    }
  }
  return out;
}

void print_recovery_tree(std::ostream& os, const PathNode& root) {
  std::vector<std::string> critical;
  collect_critical(root, critical);
  os << root.span->name << " [" << root.span->track << "]  " << std::fixed
     << std::setprecision(6) << root.span->duration().seconds() << "s";
  if (!critical.empty()) {
    os << "  (critical path: ";
    for (std::size_t i = 0; i < critical.size(); ++i) {
      if (i != 0) os << " -> ";
      os << critical[i];
    }
    os << ")";
  }
  os << "\n";
  for (std::size_t i = 0; i < root.children.size(); ++i) {
    print_node(os, root.children[i], "  ", i + 1 == root.children.size());
  }
}

}  // namespace dstage::obs
