#include "obs/metrics.hpp"

namespace dstage::obs {

namespace {

std::string key_str(const MetricKey& k) {
  return k.label.empty() ? k.name : k.name + "{" + k.label + "}";
}

}  // namespace

Counter& MetricsRegistry::counter(std::string name, std::string label) {
  std::lock_guard lock(mu_);
  return counters_[MetricKey{std::move(name), std::move(label)}];
}

Gauge& MetricsRegistry::gauge(std::string name, std::string label) {
  std::lock_guard lock(mu_);
  return gauges_[MetricKey{std::move(name), std::move(label)}];
}

Histogram& MetricsRegistry::histogram(std::string name, std::string label) {
  std::lock_guard lock(mu_);
  return histograms_[MetricKey{std::move(name), std::move(label)}];
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // `other` must be quiescent (its run has finished); lock only ourselves
  // so concurrent workers can merge into one aggregate.
  std::lock_guard lock(mu_);
  for (const auto& [k, c] : other.counters_) counters_[k].merge(c);
  for (const auto& [k, g] : other.gauges_) gauges_[k].merge(g);
  for (const auto& [k, h] : other.histograms_) histograms_[k].merge(h);
}

bool MetricsRegistry::empty() const {
  std::lock_guard lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

Json MetricsRegistry::to_json() const {
  std::lock_guard lock(mu_);
  Json j = Json::object();
  if (!counters_.empty()) {
    Json c = Json::object();
    for (const auto& [k, v] : counters_) c.set(key_str(k), v.value());
    j.set("counters", std::move(c));
  }
  if (!gauges_.empty()) {
    Json g = Json::object();
    for (const auto& [k, v] : gauges_) g.set(key_str(k), v.value());
    j.set("gauges", std::move(g));
  }
  if (!histograms_.empty()) {
    Json h = Json::object();
    for (const auto& [k, v] : histograms_) {
      const SampleSet& s = v.samples();
      Json d = Json::object();
      d.set("count", static_cast<std::uint64_t>(s.count()));
      d.set("mean", s.mean());
      d.set("min", s.percentile(0));
      d.set("max", s.percentile(100));
      d.set("p50", s.percentile(50));
      d.set("p95", s.percentile(95));
      d.set("p99", s.percentile(99));
      h.set(key_str(k), std::move(d));
    }
    j.set("histograms", std::move(h));
  }
  return j;
}

}  // namespace dstage::obs
