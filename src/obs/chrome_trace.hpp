// Chrome trace-event exporter and validator. chrome_trace_json() renders a
// SpanTracer as the JSON Object Format consumed by Perfetto and
// chrome://tracing: one process ("dstage"), one named thread track per
// component/server/workflow track, "B"/"E" duration events for spans and
// "i" instant events for point records, all in microseconds of virtual
// time and sorted by timestamp.
//
// validate_chrome_trace() is the independent check the CI smoke step runs
// on the exported file: it re-parses the JSON text with its own minimal
// parser (no shared code with the writer) and verifies well-formedness,
// globally monotone timestamps, and per-track begin/end matching.
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"
#include "util/json.hpp"

namespace dstage::obs {

/// Render the tracer's spans and instants as a trace-event document.
/// Every span must be closed (SpanTracer::end_all() at teardown
/// guarantees this for crashed activities).
[[nodiscard]] Json chrome_trace_json(const SpanTracer& tracer);

struct TraceValidation {
  bool ok = false;
  std::size_t events = 0;
  std::vector<std::string> errors;
};

/// Re-parse and check an exported trace-event JSON text. Errors are
/// human-readable and bounded (first 16).
[[nodiscard]] TraceValidation validate_chrome_trace(const std::string& text);

}  // namespace dstage::obs
