#include "obs/flight_recorder.hpp"

#include <algorithm>

namespace dstage::obs {

const char* fr_kind_name(FrKind k) {
  switch (k) {
    case FrKind::kPutAdmit:
      return "put-admit";
    case FrKind::kPutReject:
      return "put-reject";
    case FrKind::kPutBounce:
      return "put-bounce";
    case FrKind::kGetServe:
      return "get-serve";
    case FrKind::kGetAnomaly:
      return "get-anomaly";
    case FrKind::kGetBounce:
      return "get-bounce";
    case FrKind::kSpillOut:
      return "spill-out";
    case FrKind::kSpillFetch:
      return "spill-fetch";
    case FrKind::kDrainAck:
      return "drain-ack";
    case FrKind::kCkptStore:
      return "ckpt-store";
    case FrKind::kCkptEncode:
      return "ckpt-encode";
    case FrKind::kCkptDrain:
      return "ckpt-drain";
    case FrKind::kResilverOut:
      return "resilver-out";
    case FrKind::kResilverIn:
      return "resilver-in";
    case FrKind::kEpochChange:
      return "epoch-change";
    case FrKind::kGcWatermark:
      return "gc-watermark";
    case FrKind::kGcSweep:
      return "gc-sweep";
    case FrKind::kLogTruncate:
      return "log-truncate";
    case FrKind::kRestartLevel:
      return "restart-level";
    case FrKind::kReplayDone:
      return "replay-done";
    case FrKind::kFailure:
      return "failure";
    case FrKind::kDegradation:
      return "degradation";
  }
  return "?";
}

FlightRecorder::FlightRecorder(RecorderConfig cfg) : cfg_(cfg) {
  if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
  // Id 0 is the empty string so "no detail" needs no interning.
  strings_.emplace_back();
  string_ids_.emplace("", 0);
}

std::uint32_t FlightRecorder::track(std::string_view name) {
  const auto it = track_ids_.find(std::string(name));
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(track_names_.size());
  track_names_.emplace_back(name);
  rings_.emplace_back();
  track_ids_.emplace(std::string(name), id);
  return id;
}

std::uint32_t FlightRecorder::intern(std::string_view s) {
  const auto it = string_ids_.find(std::string(s));
  if (it != string_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  string_ids_.emplace(std::string(s), id);
  return id;
}

void FlightRecorder::record(std::uint32_t track, sim::TimePoint at,
                            FrKind kind, std::uint32_t detail, std::int64_t a,
                            std::int64_t b) {
  if (track >= rings_.size()) return;
  Ring& ring = rings_[track];
  if (ring.buf.size() < cfg_.ring_capacity) {
    ring.buf.push_back(FrEvent{});
    ring.next = ring.buf.size() - 1;
  } else if (ring.total > 0) {
    ++dropped_;
  }
  FrEvent& e = ring.buf[ring.next];
  e.seq = ++seq_;
  e.at_ns = at.ns;
  e.kind = kind;
  e.track = track;
  e.detail = detail;
  e.a = a;
  e.b = b;
  ring.next = (ring.next + 1) % cfg_.ring_capacity;
  ++ring.total;
  ++recorded_;
}

void FlightRecorder::record(std::uint32_t track, sim::TimePoint at,
                            FrKind kind, std::string_view detail,
                            std::int64_t a, std::int64_t b) {
  record(track, at, kind, intern(detail), a, b);
}

void FlightRecorder::note_degradation(std::uint32_t track, sim::TimePoint at,
                                      std::string what) {
  record(track, at, FrKind::kDegradation, what);
  degradations_.push_back(std::move(what));
}

const std::string& FlightRecorder::track_name(std::uint32_t id) const {
  static const std::string kUnknown = "?";
  return id < track_names_.size() ? track_names_[id] : kUnknown;
}

const std::string& FlightRecorder::detail_name(std::uint32_t id) const {
  static const std::string kUnknown = "?";
  return id < strings_.size() ? strings_[id] : kUnknown;
}

std::vector<FrEvent> FlightRecorder::track_events(std::uint32_t id) const {
  std::vector<FrEvent> out;
  if (id >= rings_.size()) return out;
  const Ring& ring = rings_[id];
  out.reserve(ring.buf.size());
  // `next` points at the oldest surviving slot once the ring has wrapped;
  // before that the buffer is already in record order.
  const std::size_t n = ring.buf.size();
  const std::size_t start = ring.total > n ? ring.next : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring.buf[(start + i) % n]);
  }
  return out;
}

std::vector<FrEvent> FlightRecorder::snapshot() const {
  std::vector<FrEvent> out;
  for (std::uint32_t t = 0; t < rings_.size(); ++t) {
    const std::vector<FrEvent> events = track_events(t);
    out.insert(out.end(), events.begin(), events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const FrEvent& a, const FrEvent& b) { return a.seq < b.seq; });
  return out;
}

std::vector<FrDecoded> FlightRecorder::dump() const {
  const std::vector<FrEvent> events = snapshot();
  std::vector<FrDecoded> out;
  out.reserve(events.size());
  for (const FrEvent& e : events) {
    FrDecoded d;
    d.seq = e.seq;
    d.at_ns = e.at_ns;
    d.kind = fr_kind_name(e.kind);
    d.track = track_name(e.track);
    d.detail = detail_name(e.detail);
    d.a = e.a;
    d.b = e.b;
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace dstage::obs
