// Fig. 9(e)-style execution-time breakdown and recovery critical path,
// derived from the span stream.
//
// Attribution rule: at every instant the time of a track is charged to the
// phase of the innermost open span (a "gc sweep" child inside a
// "checkpoint" request charges checkpoint time to the child's phase while
// it is open). Arithmetic is integer nanoseconds end to end, so the phase
// columns of one track sum to that track's completion time *exactly*; the
// gap no span covers is reported as "other". The 1e-9 s acceptance bound
// in the report tooling is therefore conservative, not load-bearing.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "util/json.hpp"

namespace dstage::obs {

constexpr std::size_t kPhaseCount = 10;  // matches enum class Phase

/// Per-track phase totals, in nanoseconds of virtual time.
struct TrackBreakdown {
  std::string track;
  std::array<std::int64_t, kPhaseCount> phase_ns{};
  std::int64_t total_ns = 0;  // first span begin -> last span end

  [[nodiscard]] std::int64_t phase(Phase p) const {
    return phase_ns[static_cast<std::size_t>(p)];
  }
  /// Sum of all phase columns (== total_ns by construction).
  [[nodiscard]] std::int64_t attributed_ns() const;
};

struct Breakdown {
  std::vector<TrackBreakdown> tracks;  // first-appearance order
  /// Wall-clock of the whole run in virtual time: max end over all spans.
  std::int64_t span_horizon_ns = 0;
};

/// Walk the span stream and attribute every track's time to phases.
[[nodiscard]] Breakdown phase_breakdown(const SpanTracer& tracer);

/// Render the breakdown as a fixed-width table (seconds, 3 decimals).
void print_breakdown(std::ostream& os, const Breakdown& b);

[[nodiscard]] Json breakdown_to_json(const Breakdown& b);

/// One node of a recovery critical-path tree.
struct PathNode {
  const Span* span = nullptr;
  std::vector<PathNode> children;  // begin order
  bool on_critical_path = false;   // member of the longest root-to-leaf chain
};

/// Recovery trees: one per root span named "recovery" (parent == 0), in
/// begin order. Children are linked via Span::parent; the longest
/// root-to-leaf chain (by child duration) is flagged.
[[nodiscard]] std::vector<PathNode> recovery_paths(const SpanTracer& tracer);

/// Render one tree, e.g.:
///   recovery [app1] 12.400s  (critical path: detect -> restore)
///     ├─ detect   0.500s  *
///     └─ restore 10.000s  *
void print_recovery_tree(std::ostream& os, const PathNode& root);

}  // namespace dstage::obs
