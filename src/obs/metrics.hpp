// Labeled metrics registry. Every instrumented layer (staging servers, the
// net fabric, GC, the resilience encoder, scheme policies, the recovery
// pipeline) registers counters, gauges, and sample histograms here via
// RuntimeServices. One registry belongs to one run; a multi-seed sweep
// aggregates per-run registries into a shared one with merge(), which is
// commutative (counter sums, gauge maxima, order-insensitive histogram
// stats), so a parallel sweep's aggregate equals a serial one's exactly.
//
// Thread-safety contract: handle mutation (Counter::inc and friends) is
// single-threaded — each run's simulation engine is single-threaded, and
// runs never share a registry. Registry-level operations (counter()/
// gauge()/histogram() lookup, merge(), to_json()) are mutex-guarded so a
// shared *aggregate* registry may be fed concurrently from sweep workers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "util/json.hpp"
#include "util/stats.hpp"

namespace dstage::obs {

/// Metric identity: a name plus an optional label (typically the component
/// or staging-server track the sample came from).
struct MetricKey {
  std::string name;
  std::string label;
  auto operator<=>(const MetricKey&) const = default;
};

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  /// Cross-run aggregation: counts add.
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level. Merging keeps the maximum, so an aggregated gauge
/// reads as the high-water mark over the merged runs — the only
/// order-insensitive (hence sweep-deterministic) combination.
class Gauge {
 public:
  void set(double v) {
    value_ = set_ ? std::max(value_, v) : v;
    last_ = v;
    set_ = true;
  }
  [[nodiscard]] double value() const { return value_; }  // high-water
  [[nodiscard]] double last() const { return last_; }
  void merge(const Gauge& other) {
    if (!other.set_) return;
    set(other.value_);
    last_ = other.last_;
  }

 private:
  double value_ = 0;
  double last_ = 0;
  bool set_ = false;
};

/// Retained-sample distribution (p50/p95/p99 and friends); wraps the
/// util/stats SampleSet accumulator.
class Histogram {
 public:
  void observe(double x) { samples_.add(x); }
  [[nodiscard]] const SampleSet& samples() const { return samples_; }
  void merge(const Histogram& other) { samples_.merge(other.samples_); }

 private:
  SampleSet samples_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Returned references are stable for the registry's
  /// lifetime (std::map node stability); mutate them only from the run's
  /// own (single) engine thread.
  Counter& counter(std::string name, std::string label = {});
  Gauge& gauge(std::string name, std::string label = {});
  Histogram& histogram(std::string name, std::string label = {});

  /// Fold another (quiescent) registry into this one. Thread-safe on the
  /// destination and commutative, so sweep workers may merge their
  /// finished runs in any order with identical results.
  void merge(const MetricsRegistry& other);

  [[nodiscard]] bool empty() const;

  /// Deterministic snapshot: keys sorted (map order), histograms reduced
  /// to order-insensitive stats (count/mean/min/max/p50/p95/p99).
  [[nodiscard]] Json to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<MetricKey, Counter> counters_;
  std::map<MetricKey, Gauge> gauges_;
  std::map<MetricKey, Histogram> histograms_;
};

}  // namespace dstage::obs
