#include "obs/span.hpp"

#include <algorithm>
#include <utility>

namespace dstage::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kOther:
      return "other";
    case Phase::kRead:
      return "read";
    case Phase::kCompute:
      return "compute";
    case Phase::kWrite:
      return "write";
    case Phase::kCheckpoint:
      return "checkpoint";
    case Phase::kRestart:
      return "restart";
    case Phase::kReplay:
      return "replay";
    case Phase::kDrain:
      return "drain";
    case Phase::kSpill:
      return "spill";
    case Phase::kResilver:
      return "resilver";
  }
  return "?";
}

SpanId SpanTracer::begin(std::string track, std::string name, Phase phase,
                         sim::TimePoint at, SpanId parent,
                         std::int64_t value) {
  Span s;
  s.id = static_cast<SpanId>(spans_.size() + 1);
  s.parent = parent;
  s.track = std::move(track);
  s.name = std::move(name);
  s.phase = phase;
  s.start = at;
  s.end = at;
  s.value = value;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void SpanTracer::end(SpanId id, sim::TimePoint at) {
  if (id == 0 || id > spans_.size()) return;
  Span& s = spans_[id - 1];
  if (!s.open) return;
  s.end = at;
  s.open = false;
}

void SpanTracer::instant(std::string track, std::string name,
                         sim::TimePoint at, std::int64_t value) {
  instants_.push_back(Instant{std::move(track), std::move(name), at, value});
}

void SpanTracer::end_open_for_track(const std::string& track,
                                    sim::TimePoint at) {
  // Reverse order closes innermost spans first, keeping begin/end pairs
  // properly nested in the export.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->open && it->track == track) {
      it->end = at;
      it->open = false;
    }
  }
}

void SpanTracer::end_all(sim::TimePoint at) {
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->open) {
      it->end = at;
      it->open = false;
    }
  }
}

const Span* SpanTracer::find(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

std::vector<const Span*> SpanTracer::children_of(SpanId id) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.parent == id) out.push_back(&s);
  }
  return out;
}

std::size_t SpanTracer::open_count() const {
  return static_cast<std::size_t>(
      std::count_if(spans_.begin(), spans_.end(),
                    [](const Span& s) { return s.open; }));
}

std::vector<std::string> SpanTracer::tracks() const {
  std::vector<std::string> out;
  auto add = [&out](const std::string& t) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  };
  for (const Span& s : spans_) add(s.track);
  for (const Instant& i : instants_) add(i.track);
  return out;
}

}  // namespace dstage::obs
