#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <utility>

namespace dstage::obs {

namespace {

constexpr std::size_t kMaxErrors = 16;

double to_us(sim::TimePoint t) {
  return static_cast<double>(t.ns) / 1000.0;
}

struct EmittedEvent {
  std::int64_t ts_ns = 0;
  std::size_t seq = 0;  // canonical order among equal timestamps
  Json json;
};

Json base_event(const char* ph, const std::string& name, int tid,
                sim::TimePoint at) {
  Json e = Json::object();
  e.set("name", name);
  e.set("ph", ph);
  e.set("ts", to_us(at));
  e.set("pid", 0);
  e.set("tid", tid);
  return e;
}

}  // namespace

Json chrome_trace_json(const SpanTracer& tracer) {
  const std::vector<std::string> track_names = tracer.tracks();
  std::map<std::string, int> tid_of;
  for (std::size_t i = 0; i < track_names.size(); ++i) {
    tid_of[track_names[i]] = static_cast<int>(i);
  }

  std::vector<EmittedEvent> events;
  std::size_t seq = 0;

  // Per-track linearization of the (properly nested) span intervals into
  // matched B/E pairs: walk spans in begin order, keeping a stack; a span
  // whose end precedes the next span's start is closed first. Our
  // instrumentation never produces partially-overlapping spans on one
  // track (phases are sequential, recovery stages are nested), which this
  // linearization — and the B/E format itself — relies on.
  for (const std::string& track : track_names) {
    const int tid = tid_of[track];
    std::vector<const Span*> spans;
    for (const Span& s : tracer.spans()) {
      if (s.track == track) spans.push_back(&s);
    }
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span* a, const Span* b) {
                       if (a->start.ns != b->start.ns)
                         return a->start.ns < b->start.ns;
                       return a->id < b->id;
                     });
    std::vector<const Span*> stack;
    auto emit_begin = [&](const Span* s) {
      Json b = base_event("B", s->name, tid, s->start);
      Json args = Json::object();
      args.set("cat", phase_name(s->phase));
      args.set("id", s->id);
      if (s->parent != 0) args.set("parent", s->parent);
      if (s->value != 0) args.set("value", s->value);
      b.set("args", std::move(args));
      events.push_back(EmittedEvent{s->start.ns, seq++, std::move(b)});
    };
    auto emit_end = [&](const Span* s) {
      events.push_back(
          EmittedEvent{s->end.ns, seq++, base_event("E", s->name, tid, s->end)});
    };
    for (const Span* s : spans) {
      while (!stack.empty() && stack.back()->end.ns <= s->start.ns) {
        emit_end(stack.back());
        stack.pop_back();
      }
      emit_begin(s);
      stack.push_back(s);
    }
    while (!stack.empty()) {
      emit_end(stack.back());
      stack.pop_back();
    }
  }

  for (const Instant& i : tracer.instants()) {
    Json e = base_event("i", i.name, tid_of[i.track], i.at);
    e.set("s", "t");
    if (i.value != 0) {
      Json args = Json::object();
      args.set("value", i.value);
      e.set("args", std::move(args));
    }
    events.push_back(EmittedEvent{i.at.ns, seq++, std::move(e)});
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const EmittedEvent& a, const EmittedEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.seq < b.seq;
                   });

  Json arr = Json::array();
  // Thread-name metadata first (no timestamps).
  for (const std::string& track : track_names) {
    Json m = Json::object();
    m.set("name", "thread_name");
    m.set("ph", "M");
    m.set("pid", 0);
    m.set("tid", tid_of[track]);
    Json args = Json::object();
    args.set("name", track);
    m.set("args", std::move(args));
    arr.push(std::move(m));
  }
  for (EmittedEvent& e : events) arr.push(std::move(e.json));

  Json doc = Json::object();
  doc.set("traceEvents", std::move(arr));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

// ---------------------------------------------------------------------------
// Validator: a self-contained JSON reader (the writer in util/json is
// write-only by design) plus the structural trace-event checks.

namespace {

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;

  [[nodiscard]] const JValue* member(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class MiniParser {
 public:
  MiniParser(const std::string& text, std::vector<std::string>& errors)
      : p_(text.data()), end_(text.data() + text.size()), errors_(&errors) {}

  bool parse_document(JValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (p_ != end_) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (errors_->size() < kMaxErrors) {
      errors_->push_back("json: " + msg + " at offset " +
                         std::to_string(offset_));
    }
    return false;
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      advance();
    }
  }

  void advance() {
    ++p_;
    ++offset_;
  }

  bool literal(const char* word) {
    const char* q = word;
    while (*q != '\0') {
      if (p_ == end_ || *p_ != *q) return fail("bad literal");
      advance();
      ++q;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (p_ == end_ || *p_ != '"') return fail("expected string");
    advance();
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        advance();
        if (p_ == end_) return fail("truncated escape");
        switch (*p_) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              advance();
              if (p_ == end_ || std::isxdigit(static_cast<unsigned char>(
                                    *p_)) == 0) {
                return fail("bad \\u escape");
              }
            }
            out += '?';  // code point value irrelevant for validation
            break;
          }
          default:
            return fail("unknown escape");
        }
        advance();
      } else {
        out += *p_;
        advance();
      }
    }
    if (p_ == end_) return fail("unterminated string");
    advance();  // closing quote
    return true;
  }

  bool parse_number(double& out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) advance();
    bool digits = false;
    auto eat_digits = [&] {
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        digits = true;
        advance();
      }
    };
    eat_digits();
    if (p_ != end_ && *p_ == '.') {
      advance();
      eat_digits();
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      advance();
      if (p_ != end_ && (*p_ == '-' || *p_ == '+')) advance();
      eat_digits();
    }
    if (!digits) return fail("expected number");
    out = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  bool parse_value(JValue& out) {
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{': {
        out.kind = JValue::Kind::kObject;
        advance();
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
          advance();
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return fail("expected ':'");
          advance();
          JValue v;
          if (!parse_value(v)) return false;
          out.object.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') {
            advance();
            continue;
          }
          if (p_ != end_ && *p_ == '}') {
            advance();
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        out.kind = JValue::Kind::kArray;
        advance();
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
          advance();
          return true;
        }
        for (;;) {
          JValue v;
          if (!parse_value(v)) return false;
          out.array.push_back(std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') {
            advance();
            continue;
          }
          if (p_ != end_ && *p_ == ']') {
            advance();
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.kind = JValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JValue::Kind::kNull;
        return literal("null");
      default:
        out.kind = JValue::Kind::kNumber;
        return parse_number(out.number);
    }
  }

  const char* p_;
  const char* end_;
  std::size_t offset_ = 0;
  std::vector<std::string>* errors_;
};

void add_error(TraceValidation& v, std::string msg) {
  if (v.errors.size() < kMaxErrors) v.errors.push_back(std::move(msg));
}

}  // namespace

TraceValidation validate_chrome_trace(const std::string& text) {
  TraceValidation v;
  JValue doc;
  {
    MiniParser parser(text, v.errors);
    if (!parser.parse_document(doc)) return v;
  }
  if (doc.kind != JValue::Kind::kObject) {
    add_error(v, "top-level value is not an object");
    return v;
  }
  const JValue* events = doc.member("traceEvents");
  if (events == nullptr || events->kind != JValue::Kind::kArray) {
    add_error(v, "missing traceEvents array");
    return v;
  }

  // Per-(pid, tid) begin/end stacks.
  std::map<std::pair<double, double>, std::vector<std::string>> stacks;
  double last_ts = -1;
  bool have_ts = false;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JValue& e = events->array[i];
    const std::string at = "event " + std::to_string(i);
    if (e.kind != JValue::Kind::kObject) {
      add_error(v, at + ": not an object");
      continue;
    }
    ++v.events;
    const JValue* ph = e.member("ph");
    if (ph == nullptr || ph->kind != JValue::Kind::kString ||
        ph->string.size() != 1) {
      add_error(v, at + ": missing ph");
      continue;
    }
    const char kind = ph->string[0];
    if (kind == 'M') continue;  // metadata: no timestamp semantics
    const JValue* pid = e.member("pid");
    const JValue* tid = e.member("tid");
    const JValue* ts = e.member("ts");
    const JValue* name = e.member("name");
    if (pid == nullptr || pid->kind != JValue::Kind::kNumber ||
        tid == nullptr || tid->kind != JValue::Kind::kNumber) {
      add_error(v, at + ": missing pid/tid");
      continue;
    }
    if (ts == nullptr || ts->kind != JValue::Kind::kNumber ||
        !std::isfinite(ts->number)) {
      add_error(v, at + ": missing ts");
      continue;
    }
    if (ts->number < 0) add_error(v, at + ": negative ts");
    if (have_ts && ts->number < last_ts) {
      add_error(v, at + ": timestamps not monotone (" +
                       std::to_string(ts->number) + " after " +
                       std::to_string(last_ts) + ")");
    }
    last_ts = ts->number;
    have_ts = true;

    auto& stack = stacks[{pid->number, tid->number}];
    switch (kind) {
      case 'B': {
        if (name == nullptr || name->kind != JValue::Kind::kString) {
          add_error(v, at + ": B event without name");
          break;
        }
        stack.push_back(name->string);
        break;
      }
      case 'E': {
        if (stack.empty()) {
          add_error(v, at + ": E event with no open span");
          break;
        }
        if (name != nullptr && name->kind == JValue::Kind::kString &&
            name->string != stack.back()) {
          add_error(v, at + ": E event '" + name->string +
                           "' does not match open span '" + stack.back() +
                           "'");
        }
        stack.pop_back();
        break;
      }
      case 'X': {
        const JValue* dur = e.member("dur");
        if (dur == nullptr || dur->kind != JValue::Kind::kNumber ||
            dur->number < 0) {
          add_error(v, at + ": X event without non-negative dur");
        }
        break;
      }
      case 'i':
        break;
      default:
        add_error(v, at + ": unknown ph '" + ph->string + "'");
        break;
    }
  }
  for (const auto& [key, stack] : stacks) {
    if (!stack.empty()) {
      add_error(v, "tid " + std::to_string(key.second) + ": " +
                       std::to_string(stack.size()) +
                       " unmatched begin event(s), innermost '" +
                       stack.back() + "'");
    }
  }
  v.ok = v.errors.empty();
  return v;
}

}  // namespace dstage::obs
