#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <utility>

#include "obs/report.hpp"
#include "util/json_reader.hpp"

namespace dstage::obs {

namespace {

constexpr std::size_t kMaxErrors = 16;

double to_us(sim::TimePoint t) {
  return static_cast<double>(t.ns) / 1000.0;
}

struct EmittedEvent {
  std::int64_t ts_ns = 0;
  std::size_t seq = 0;  // canonical order among equal timestamps
  Json json;
};

Json base_event(const char* ph, const std::string& name, int tid,
                sim::TimePoint at) {
  Json e = Json::object();
  e.set("name", name);
  e.set("ph", ph);
  e.set("ts", to_us(at));
  e.set("pid", 0);
  e.set("tid", tid);
  return e;
}

}  // namespace

Json chrome_trace_json(const SpanTracer& tracer) {
  const std::vector<std::string> track_names = tracer.tracks();
  std::map<std::string, int> tid_of;
  for (std::size_t i = 0; i < track_names.size(); ++i) {
    tid_of[track_names[i]] = static_cast<int>(i);
  }

  std::vector<EmittedEvent> events;
  std::size_t seq = 0;

  // Per-track linearization of the (properly nested) span intervals into
  // matched B/E pairs: walk spans in begin order, keeping a stack; a span
  // whose end precedes the next span's start is closed first. Our
  // instrumentation never produces partially-overlapping spans on one
  // track (phases are sequential, recovery stages are nested), which this
  // linearization — and the B/E format itself — relies on.
  for (const std::string& track : track_names) {
    const int tid = tid_of[track];
    std::vector<const Span*> spans;
    for (const Span& s : tracer.spans()) {
      if (s.track == track) spans.push_back(&s);
    }
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span* a, const Span* b) {
                       if (a->start.ns != b->start.ns)
                         return a->start.ns < b->start.ns;
                       return a->id < b->id;
                     });
    std::vector<const Span*> stack;
    auto emit_begin = [&](const Span* s) {
      Json b = base_event("B", s->name, tid, s->start);
      Json args = Json::object();
      args.set("cat", phase_name(s->phase));
      args.set("id", s->id);
      if (s->parent != 0) args.set("parent", s->parent);
      if (s->value != 0) args.set("value", s->value);
      b.set("args", std::move(args));
      events.push_back(EmittedEvent{s->start.ns, seq++, std::move(b)});
    };
    auto emit_end = [&](const Span* s) {
      events.push_back(
          EmittedEvent{s->end.ns, seq++, base_event("E", s->name, tid, s->end)});
    };
    for (const Span* s : spans) {
      while (!stack.empty() && stack.back()->end.ns <= s->start.ns) {
        emit_end(stack.back());
        stack.pop_back();
      }
      emit_begin(s);
      stack.push_back(s);
    }
    while (!stack.empty()) {
      emit_end(stack.back());
      stack.pop_back();
    }
  }

  for (const Instant& i : tracer.instants()) {
    Json e = base_event("i", i.name, tid_of[i.track], i.at);
    e.set("s", "t");
    if (i.value != 0) {
      Json args = Json::object();
      args.set("value", i.value);
      e.set("args", std::move(args));
    }
    events.push_back(EmittedEvent{i.at.ns, seq++, std::move(e)});
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const EmittedEvent& a, const EmittedEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.seq < b.seq;
                   });

  Json arr = Json::array();
  // Thread-name metadata first (no timestamps).
  for (const std::string& track : track_names) {
    Json m = Json::object();
    m.set("name", "thread_name");
    m.set("ph", "M");
    m.set("pid", 0);
    m.set("tid", tid_of[track]);
    Json args = Json::object();
    args.set("name", track);
    m.set("args", std::move(args));
    arr.push(std::move(m));
  }
  for (EmittedEvent& e : events) arr.push(std::move(e.json));

  Json doc = Json::object();
  doc.set("traceEvents", std::move(arr));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

// ---------------------------------------------------------------------------
// Validator: the shared util/json_reader parser (the writer in util/json is
// write-only by design) plus the structural trace-event checks.

namespace {

void add_error(TraceValidation& v, std::string msg) {
  if (v.errors.size() < kMaxErrors) v.errors.push_back(std::move(msg));
}

bool known_phase_cat(const std::string& cat) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (cat == phase_name(static_cast<Phase>(i))) return true;
  }
  return false;
}

}  // namespace

TraceValidation validate_chrome_trace(const std::string& text) {
  TraceValidation v;
  JsonParse parsed = parse_json(text);
  if (!parsed.ok) {
    v.errors = std::move(parsed.errors);
    return v;
  }
  const JsonValue& doc = parsed.value;
  if (!doc.is_object()) {
    add_error(v, "top-level value is not an object");
    return v;
  }
  const JsonValue* events = doc.member("traceEvents");
  if (events == nullptr || !events->is_array()) {
    add_error(v, "missing traceEvents array");
    return v;
  }

  // Per-(pid, tid) begin/end stacks.
  std::map<std::pair<double, double>, std::vector<std::string>> stacks;
  double last_ts = -1;
  bool have_ts = false;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "event " + std::to_string(i);
    if (!e.is_object()) {
      add_error(v, at + ": not an object");
      continue;
    }
    ++v.events;
    const JsonValue* ph = e.member("ph");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      add_error(v, at + ": missing ph");
      continue;
    }
    const char kind = ph->string[0];
    if (kind == 'M') continue;  // metadata: no timestamp semantics
    const JsonValue* pid = e.member("pid");
    const JsonValue* tid = e.member("tid");
    const JsonValue* ts = e.member("ts");
    const JsonValue* name = e.member("name");
    if (pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      add_error(v, at + ": missing pid/tid");
      continue;
    }
    if (ts == nullptr || !ts->is_number() || !std::isfinite(ts->number)) {
      add_error(v, at + ": missing ts");
      continue;
    }
    if (ts->number < 0) add_error(v, at + ": negative ts");
    if (have_ts && ts->number < last_ts) {
      add_error(v, at + ": timestamps not monotone (" +
                       std::to_string(ts->number) + " after " +
                       std::to_string(last_ts) + ")");
    }
    last_ts = ts->number;
    have_ts = true;

    auto& stack = stacks[{pid->number, tid->number}];
    switch (kind) {
      case 'B': {
        if (name == nullptr || !name->is_string()) {
          add_error(v, at + ": B event without name");
          break;
        }
        // The exporter stamps every B event's args.cat with the span's
        // phase; an unknown category means a phase was added without
        // teaching phase_name() (and the breakdown columns) about it.
        if (const JsonValue* args = e.member("args"); args != nullptr) {
          if (const JsonValue* cat = args->member("cat"); cat != nullptr) {
            if (!cat->is_string() || !known_phase_cat(cat->string)) {
              add_error(v, at + ": unknown phase category '" +
                               (cat->is_string() ? cat->string : "?") + "'");
            }
          }
        }
        stack.push_back(name->string);
        break;
      }
      case 'E': {
        if (stack.empty()) {
          add_error(v, at + ": E event with no open span");
          break;
        }
        if (name != nullptr && name->is_string() &&
            name->string != stack.back()) {
          add_error(v, at + ": E event '" + name->string +
                           "' does not match open span '" + stack.back() +
                           "'");
        }
        stack.pop_back();
        break;
      }
      case 'X': {
        const JsonValue* dur = e.member("dur");
        if (dur == nullptr || !dur->is_number() || dur->number < 0) {
          add_error(v, at + ": X event without non-negative dur");
        }
        break;
      }
      case 'i':
        break;
      default:
        add_error(v, at + ": unknown ph '" + ph->string + "'");
        break;
    }
  }
  for (const auto& [key, stack] : stacks) {
    if (!stack.empty()) {
      add_error(v, "tid " + std::to_string(key.second) + ": " +
                       std::to_string(stack.size()) +
                       " unmatched begin event(s), innermost '" +
                       stack.back() + "'");
    }
  }
  v.ok = v.errors.empty();
  return v;
}

}  // namespace dstage::obs
