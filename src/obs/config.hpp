// Observability gates. ObsConfig is the runtime switch carried by
// WorkflowSpec; compiled_in() is the compile-time switch (CMake option
// DSTAGE_OBS, which defines DSTAGE_OBS_OFF when disabled). With either
// gate off the Runtime allocates no Observability object, records no
// spans, fires no GC/log trace hooks, and every run is byte-identical —
// trace digests included — to an uninstrumented build.
#pragma once

#include <cstddef>

namespace dstage::obs {

struct ObsConfig {
  /// Master switch. Off by default so golden-trace digests, the
  /// consistency oracle, and the failure campaign see exactly the
  /// pre-observability event stream.
  bool enabled = false;
};

/// Flight-recorder switch, carried by WorkflowSpec next to ObsConfig but
/// independent of it: the recorder is ON by default because — unlike the
/// span/metrics bundle — it records no trace events, takes no virtual
/// time, and draws no randomness, so golden digests are byte-identical
/// with it enabled or disabled.
struct RecorderConfig {
  bool enabled = true;
  /// Last-K events retained per track before the ring wraps.
  std::size_t ring_capacity = 256;
};

/// Compile-time gate; the runtime consults this before honoring
/// ObsConfig::enabled.
constexpr bool compiled_in() {
#ifdef DSTAGE_OBS_OFF
  return false;
#else
  return true;
#endif
}

}  // namespace dstage::obs
