// Always-on flight recorder: a bounded-memory ring buffer of compact
// structured events per track (one track per component, staging server, or
// auxiliary vproc), recorded at near-zero host cost and ZERO virtual-time
// cost. Unlike the opt-in Observability bundle (spans + metrics, heavy and
// digest-visible through the obs trace kinds), the recorder is enabled by
// default and deliberately invisible: it allocates no vprocs, takes no
// virtual-time delays, records no core::Trace events, and draws no random
// numbers — so golden trace digests are byte-identical with it on or off.
//
// When something goes loudly wrong — an oracle invariant violation, a
// campaign --expect-fail mismatch, or a degradation (spare-pool
// exhaustion, double XOR loss) — the last-K events per track are dumped
// into a forensic bundle (check/forensics) and diffed against the
// memoized reference run to name the first divergent event.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/config.hpp"
#include "sim/time.hpp"

namespace dstage::obs {

/// Compact event vocabulary. Names (fr_kind_name) are part of the bundle
/// format; append new kinds at the end.
enum class FrKind : std::uint8_t {
  kPutAdmit,      // detail=var, a=version, b=nominal bytes
  kPutReject,     // governor admission reject: detail=var, a=version
  kPutBounce,     // wrong-epoch put bounce: detail=var, a=version, b=epoch
  kGetServe,      // detail=var, a=timestep, b=order-independent checksum
  kGetAnomaly,    // wrong-version serve: detail=var, a=requested version,
                  // b=version actually substituted
  kGetBounce,     // wrong-epoch get bounce: detail=var, a=version, b=epoch
  kSpillOut,      // detail=var, a=version, b=bytes spilled to the gateway
  kSpillFetch,    // detail=var, a=version, b=bytes faulted back in
  kDrainAck,      // ckpt drain ack promoted the watermark: detail=app, a=ts
  kCkptStore,     // drain agent accepted a set: detail=app, a=ts, b=bytes
  kCkptEncode,    // XOR parity distributed: detail=app, a=ts
  kCkptDrain,     // set reached the PFS: detail=app, a=ts, b=bytes
  kResilverOut,   // hand-off stream sent: detail=var, a=chunks, b=bytes
  kResilverIn,    // hand-off stream received: detail=var, a=version, b=bytes
  kEpochChange,   // membership view installed: a=epoch, b=active servers
  kGcWatermark,   // detail=var, a=new watermark version
  kGcSweep,       // a=entries scanned, b=nominal bytes reclaimed
  kLogTruncate,   // a=metadata entries dropped
  kRestartLevel,  // detail=component, a=level (0 cache/1 partner/2 pfs),
                  // b=restart timestep
  kReplayDone,    // detail=component, a=versions replayed, b=timestep
  kFailure,       // detail=component, a=timestep, b=1 node-level
  kDegradation,   // detail=what went loudly wrong, a/b free-form
};

const char* fr_kind_name(FrKind k);

/// One recorded event. `track` and `detail` are intern-table ids; `seq` is
/// a recorder-global monotone counter so a merged dump interleaves tracks
/// in true record order even though each track truncates independently.
struct FrEvent {
  std::uint64_t seq = 0;
  std::int64_t at_ns = 0;
  FrKind kind = FrKind::kPutAdmit;
  std::uint32_t track = 0;
  std::uint32_t detail = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Decoded event for dumps and bundles (strings resolved).
struct FrDecoded {
  std::uint64_t seq = 0;
  std::int64_t at_ns = 0;
  std::string kind;
  std::string track;
  std::string detail;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(RecorderConfig cfg = {});

  /// Intern a track name, creating its ring. Returned ids are dense and
  /// stable; call once at wiring time, not on the hot path.
  [[nodiscard]] std::uint32_t track(std::string_view name);
  /// Intern a detail string (variable/component names repeat heavily, so
  /// events store 4-byte ids instead of strings).
  [[nodiscard]] std::uint32_t intern(std::string_view s);

  void record(std::uint32_t track, sim::TimePoint at, FrKind kind,
              std::uint32_t detail, std::int64_t a = 0, std::int64_t b = 0);
  /// Convenience: interns `detail` inline.
  void record(std::uint32_t track, sim::TimePoint at, FrKind kind,
              std::string_view detail, std::int64_t a = 0,
              std::int64_t b = 0);

  /// A loud degradation (spare-pool exhaustion, double XOR loss, ...):
  /// recorded as a kDegradation event AND kept verbatim so the runtime can
  /// trigger a bundle dump even when no invariant check is watching.
  void note_degradation(std::uint32_t track, sim::TimePoint at,
                        std::string what);
  [[nodiscard]] const std::vector<std::string>& degradations() const {
    return degradations_;
  }

  [[nodiscard]] const RecorderConfig& config() const { return cfg_; }
  /// Total events offered to record() (including overwritten ones).
  [[nodiscard]] std::uint64_t events_recorded() const { return recorded_; }
  /// Events lost to ring wraparound across all tracks.
  [[nodiscard]] std::uint64_t events_dropped() const { return dropped_; }
  [[nodiscard]] std::size_t track_count() const {
    return track_names_.size();
  }
  [[nodiscard]] const std::string& track_name(std::uint32_t id) const;
  [[nodiscard]] const std::string& detail_name(std::uint32_t id) const;

  /// Surviving events of one track, oldest first.
  [[nodiscard]] std::vector<FrEvent> track_events(std::uint32_t id) const;
  /// Surviving events of every track, merged in global seq order.
  [[nodiscard]] std::vector<FrEvent> snapshot() const;
  /// snapshot() with strings resolved — the bundle payload.
  [[nodiscard]] std::vector<FrDecoded> dump() const;

 private:
  struct Ring {
    std::vector<FrEvent> buf;  // capacity-sized once first written
    std::size_t next = 0;      // slot the next event overwrites
    std::uint64_t total = 0;   // events ever recorded on this track
  };

  RecorderConfig cfg_;
  std::uint64_t seq_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> track_names_;
  std::vector<Ring> rings_;
  std::unordered_map<std::string, std::uint32_t> track_ids_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> string_ids_;
  std::vector<std::string> degradations_;
};

}  // namespace dstage::obs
