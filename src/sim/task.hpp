// Lazy coroutine task with symmetric transfer. Task<T> is the return type of
// every simulated activity; awaiting a task runs it to completion in virtual
// time and yields its value (or rethrows its exception, which is how
// Cancelled propagates out of a killed process).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

namespace dstage::sim {

template <class T>
class [[nodiscard]] Task;

namespace detail {

template <class T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
    return {};
  }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
};

}  // namespace detail

/// Move-only owner of a lazily started coroutine.
template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::variant<std::monostate, T, std::exception_ptr> result;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <class U>
    void return_value(U&& v) {
      result.template emplace<1>(std::forward<U>(v));
    }
    void unhandled_exception() {
      result.template emplace<2>(std::current_exception());
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : coro_(std::exchange(other.coro_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      coro_ = std::exchange(other.coro_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return coro_ != nullptr; }
  [[nodiscard]] bool done() const { return coro_ && coro_.done(); }

  // Awaiter interface: starting the child via symmetric transfer.
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    coro_.promise().continuation = awaiting;
    return coro_;
  }
  T await_resume() {
    auto& r = coro_.promise().result;
    if (r.index() == 2) std::rethrow_exception(std::get<2>(r));
    return std::move(std::get<1>(r));
  }

  /// Raw handle, for Engine::spawn-style drivers.
  [[nodiscard]] std::coroutine_handle<promise_type> handle() const {
    return coro_;
  }
  /// Releases ownership (caller must destroy the frame).
  std::coroutine_handle<promise_type> release() {
    return std::exchange(coro_, nullptr);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : coro_(h) {}
  void destroy() {
    if (coro_) {
      coro_.destroy();
      coro_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> coro_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    std::exception_ptr error;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Task() = default;
  Task(Task&& other) noexcept : coro_(std::exchange(other.coro_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      coro_ = std::exchange(other.coro_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return coro_ != nullptr; }
  [[nodiscard]] bool done() const { return coro_ && coro_.done(); }

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    coro_.promise().continuation = awaiting;
    return coro_;
  }
  void await_resume() {
    if (coro_.promise().error) std::rethrow_exception(coro_.promise().error);
  }

  [[nodiscard]] std::coroutine_handle<promise_type> handle() const {
    return coro_;
  }
  std::coroutine_handle<promise_type> release() {
    return std::exchange(coro_, nullptr);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : coro_(h) {}
  void destroy() {
    if (coro_) {
      coro_.destroy();
      coro_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> coro_;
};

}  // namespace dstage::sim
