// Root-process management: spawn() launches a Task<void> as an independent
// simulated process, and when_all() fans subtasks out in *parallel virtual
// time* (sequentially awaiting tasks would serialize their delays).
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/cancel.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/task.hpp"

namespace dstage::sim {

namespace detail {

/// Self-destroying root coroutine: final_suspend never suspends, so the
/// frame (and the Task it owns) is freed when the process finishes.
struct RootCoro {
  struct promise_type {
    RootCoro get_return_object() {
      return RootCoro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
      return {};
    }
    [[nodiscard]] std::suspend_never final_suspend() const noexcept {
      return {};
    }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }  // run_root catches all
  };
  std::coroutine_handle<promise_type> handle;
};

inline RootCoro run_root(Task<void> task,
                         std::function<void(std::exception_ptr)> on_done) {
  std::exception_ptr error;
  try {
    co_await std::move(task);
  } catch (...) {
    error = std::current_exception();
  }
  if (on_done) on_done(error);
}

}  // namespace detail

/// Launch `task` as an independent process at the current virtual time.
/// `on_done` (optional) runs when the task finishes; a process killed via
/// its CancelToken completes with a Cancelled exception_ptr.
///
/// Lifetime caution: a coroutine created from a *temporary capturing lambda*
/// dangles (the frame references the destroyed closure). Pass the lambda
/// itself to the factory overload below instead of invoking it inline.
inline void spawn(Engine& eng, Task<void> task,
                  std::function<void(std::exception_ptr)> on_done = {}) {
  auto root = detail::run_root(std::move(task), std::move(on_done));
  eng.schedule_now(root.handle);
}

namespace detail {

template <class F>
RootCoro run_root_factory(F factory,
                          std::function<void(std::exception_ptr)> on_done) {
  // `factory` lives in this root frame, so the child coroutine's references
  // to the closure's captures stay valid for the child's whole lifetime.
  std::exception_ptr error;
  try {
    co_await factory();
  } catch (...) {
    error = std::current_exception();
  }
  if (on_done) on_done(error);
}

}  // namespace detail

/// Launch a process from a callable returning Task<void>. The callable (and
/// therefore its captures) is kept alive until the process finishes — the
/// safe way to spawn a capturing lambda coroutine.
template <class F>
  requires std::is_invocable_r_v<Task<void>, F&>
void spawn(Engine& eng, F factory,
           std::function<void(std::exception_ptr)> on_done = {}) {
  auto root =
      detail::run_root_factory(std::move(factory), std::move(on_done));
  eng.schedule_now(root.handle);
}

namespace detail {

template <class T>
struct WhenAllState {
  explicit WhenAllState(Engine& eng, std::size_t n)
      : done(eng), results(n), count(n) {}
  OneShotEvent done;
  std::vector<T> results;
  std::size_t count;
  std::exception_ptr first_error;
};

template <class T>
Task<void> run_when_all_child(std::shared_ptr<WhenAllState<T>> state,
                              std::size_t idx, Task<T> task) {
  try {
    state->results[idx] = co_await std::move(task);
  } catch (...) {
    if (!state->first_error) state->first_error = std::current_exception();
  }
  if (--state->count == 0) state->done.set();
}

struct WhenAllVoidState {
  explicit WhenAllVoidState(Engine& eng, std::size_t n)
      : done(eng), count(n) {}
  OneShotEvent done;
  std::size_t count;
  std::exception_ptr first_error;
};

inline Task<void> run_when_all_void_child(
    std::shared_ptr<WhenAllVoidState> state, Task<void> task) {
  try {
    co_await std::move(task);
  } catch (...) {
    if (!state->first_error) state->first_error = std::current_exception();
  }
  if (--state->count == 0) state->done.set();
}

}  // namespace detail

/// Run all tasks concurrently (in virtual time); completes when every child
/// has completed. Rethrows the first child failure, after all finish. The
/// children share the caller's token indirectly: awaits inside them should
/// use the same Ctx, so killing the process unwinds children too.
template <class T>
Task<std::vector<T>> when_all(Ctx ctx, std::vector<Task<T>> tasks) {
  auto state =
      std::make_shared<detail::WhenAllState<T>>(*ctx.eng, tasks.size());
  if (tasks.empty()) co_return std::move(state->results);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    spawn(*ctx.eng,
          detail::run_when_all_child<T>(state, i, std::move(tasks[i])));
  }
  co_await state->done.wait(ctx.tok);
  if (state->first_error) std::rethrow_exception(state->first_error);
  co_return std::move(state->results);
}

inline Task<void> when_all(Ctx ctx, std::vector<Task<void>> tasks) {
  auto state =
      std::make_shared<detail::WhenAllVoidState>(*ctx.eng, tasks.size());
  if (tasks.empty()) co_return;
  for (auto& t : tasks) {
    spawn(*ctx.eng, detail::run_when_all_void_child(state, std::move(t)));
  }
  co_await state->done.wait(ctx.tok);
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace dstage::sim
