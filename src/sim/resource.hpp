// Counted FIFO resource with RAII grants — the contention primitive behind
// the PFS bandwidth model and NIC injection queues. Strict FIFO granting
// keeps runs deterministic and models store-and-forward queueing.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <utility>

#include "sim/cancel.hpp"
#include "sim/engine.hpp"

namespace dstage::sim {

class Resource {
 public:
  Resource(Engine& eng, std::uint64_t capacity)
      : eng_(&eng), capacity_(capacity), available_(capacity) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// RAII ownership of `amount` units; releases on destruction.
  class [[nodiscard]] Guard {
   public:
    Guard() = default;
    Guard(Resource* res, std::uint64_t amount) : res_(res), amount_(amount) {}
    Guard(Guard&& o) noexcept
        : res_(std::exchange(o.res_, nullptr)), amount_(o.amount_) {}
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        reset();
        res_ = std::exchange(o.res_, nullptr);
        amount_ = o.amount_;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { reset(); }

    void reset() {
      if (res_ != nullptr) {
        res_->release(amount_);
        res_ = nullptr;
      }
    }
    [[nodiscard]] bool owns() const { return res_ != nullptr; }

   private:
    Resource* res_ = nullptr;
    std::uint64_t amount_ = 0;
  };

  class AcquireAwaiter : public CancelWaiter {
   public:
    AcquireAwaiter(Resource& res, CancelToken* tok, std::uint64_t amount)
        : res_(&res), tok_(tok), amount_(amount) {
      if (amount_ > res_->capacity_)
        throw std::invalid_argument("acquire exceeds resource capacity");
    }

    [[nodiscard]] bool await_ready() {
      if (tok_ != nullptr && tok_->cancelled()) {
        cancelled_ = true;
        return true;
      }
      if (res_->queue_.empty() && amount_ <= res_->available_) {
        res_->available_ -= amount_;
        granted_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      res_->queue_.push_back(this);
      if (tok_ != nullptr) tok_->add(this);
    }
    Guard await_resume() {
      if (tok_ != nullptr) tok_->remove(this);
      if (cancelled_) throw Cancelled{};
      return Guard{res_, amount_};
    }

    void on_cancel() override {
      cancelled_ = true;
      res_->remove_waiter(this);
      res_->eng_->schedule_now(handle_);
    }

   private:
    friend class Resource;
    Resource* res_;
    CancelToken* tok_;
    std::uint64_t amount_;
    std::coroutine_handle<> handle_;
    bool granted_ = false;
    bool cancelled_ = false;
  };

  /// auto guard = co_await res.acquire(tok, n);
  [[nodiscard]] AcquireAwaiter acquire(CancelToken* tok,
                                       std::uint64_t amount = 1) {
    return AcquireAwaiter{*this, tok, amount};
  }

  void release(std::uint64_t amount) {
    available_ += amount;
    if (available_ > capacity_)
      throw std::logic_error("resource over-released");
    grant();
  }

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t available() const { return available_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }

 private:
  void grant() {
    while (!queue_.empty()) {
      AcquireAwaiter* w = queue_.front();
      if (w->amount_ > available_) break;  // strict FIFO: no overtaking
      queue_.pop_front();
      available_ -= w->amount_;
      w->granted_ = true;
      if (w->tok_ != nullptr) w->tok_->remove(w);
      eng_->schedule_now(w->handle_);
    }
  }
  void remove_waiter(AcquireAwaiter* w) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == w) {
        queue_.erase(it);
        return;
      }
    }
  }

  Engine* eng_;
  std::uint64_t capacity_;
  std::uint64_t available_;
  std::deque<AcquireAwaiter*> queue_;
};

}  // namespace dstage::sim
