// Single-threaded discrete-event engine. Coroutine handles and plain
// callbacks are scheduled at virtual times; ties are broken by insertion
// order so runs are fully deterministic.
//
// Hot-path layout: the heap holds 32-byte POD items (no std::function, no
// per-pop copies), ordered by (at.ns, id) in a hand-rolled binary heap.
// Callbacks live in pooled, type-erased call frames — an intrusive
// freelist of slab-allocated frames with inline storage and a trampoline
// pointer — so scheduling a lambda costs no allocation once the pool is
// warm. Dispatch order is bit-identical to the historical
// priority_queue<Item> formulation: golden trace digests must not move.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <memory>
#include <new>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace dstage::sim {

/// Identifier of a scheduled item, usable with cancel_event().
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Resume `h` after `d` of virtual time (d >= 0).
  EventId schedule(Duration d, std::coroutine_handle<> h);
  /// Resume `h` at the current virtual time, after already-queued items.
  EventId schedule_now(std::coroutine_handle<> h) { return schedule({0}, h); }

  /// Run `fn` after `d` of virtual time. Any callable; captures up to
  /// CallFrame::kInlineBytes are stored in-place in a pooled frame,
  /// larger ones fall back to one heap box.
  template <class F>
  EventId schedule_call(Duration d, F&& fn) {
    check_delay(d);
    CallFrame* frame = frame_for(std::forward<F>(fn));
    const EventId id = next_id_++;
    push_item(Item{now_.ns + d.ns, id, frame, /*is_frame=*/true});
    ++live_items_;
    return id;
  }

  /// Drop a not-yet-fired item. Safe to call on an already-fired id.
  void cancel_event(EventId id);

  /// Process events until the queue drains. Returns number processed.
  std::uint64_t run();
  /// Process events with time <= limit; clock ends at min(limit, last event).
  std::uint64_t run_until(TimePoint limit);
  /// Process a single event if one exists; returns false on empty queue.
  bool step();

  [[nodiscard]] bool empty() const { return live_items_ == 0; }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  /// Type-erased callback slot. Frames are pooled: slab-allocated, reused
  /// through an intrusive freelist, and never individually freed.
  struct CallFrame {
    static constexpr std::size_t kInlineBytes = 64;
    /// Moves the callable out of `storage`, destroys the stored copy, and
    /// invokes it — in that order, so the frame can be recycled before the
    /// callback runs (a callback may legally schedule into this engine).
    void (*invoke)(CallFrame*, Engine*) = nullptr;
    /// Destroys the stored callable without invoking (cancel/teardown).
    void (*discard)(CallFrame*) = nullptr;
    CallFrame* next_free = nullptr;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
  };

  /// POD heap entry; trivially copyable, 32 bytes.
  struct Item {
    std::int64_t at_ns;
    EventId id;
    void* target;   // CallFrame* or coroutine handle address
    bool is_frame;
  };
  static bool later(const Item& a, const Item& b) {
    if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
    return a.id > b.id;
  }

  static void check_delay(Duration d);

  template <class F>
  CallFrame* frame_for(F&& fn) {
    using Fn = std::decay_t<F>;
    CallFrame* frame = alloc_frame();
    if constexpr (sizeof(Fn) <= CallFrame::kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(frame->storage)) Fn(std::forward<F>(fn));
      frame->invoke = [](CallFrame* f, Engine* eng) {
        Fn* stored = std::launder(reinterpret_cast<Fn*>(f->storage));
        Fn local(std::move(*stored));
        stored->~Fn();
        eng->recycle_frame(f);
        local();
      };
      frame->discard = [](CallFrame* f) {
        std::launder(reinterpret_cast<Fn*>(f->storage))->~Fn();
      };
    } else {
      // Oversized or throwing-move callable: one heap box, pointer inline.
      auto* boxed = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(frame->storage)) Fn*(boxed);
      frame->invoke = [](CallFrame* f, Engine* eng) {
        Fn* stored = *std::launder(reinterpret_cast<Fn**>(f->storage));
        eng->recycle_frame(f);
        (*stored)();
        delete stored;
      };
      frame->discard = [](CallFrame* f) {
        delete *std::launder(reinterpret_cast<Fn**>(f->storage));
      };
    }
    return frame;
  }

  CallFrame* alloc_frame();
  void recycle_frame(CallFrame* frame) {
    frame->next_free = free_frames_;
    free_frames_ = frame;
  }

  void push_item(const Item& item);
  bool pop_one(Item& out);
  void dispatch(const Item& item);

  TimePoint now_{};
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t live_items_ = 0;
  std::vector<Item> heap_;  // binary min-heap on (at_ns, id)
  std::unordered_set<EventId> dead_;
  CallFrame* free_frames_ = nullptr;
  std::vector<std::unique_ptr<CallFrame[]>> slabs_;
};

}  // namespace dstage::sim
