// Single-threaded discrete-event engine. Coroutine handles and plain
// callbacks are scheduled at virtual times; ties are broken by insertion
// order so runs are fully deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace dstage::sim {

/// Identifier of a scheduled item, usable with cancel_event().
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Resume `h` after `d` of virtual time (d >= 0).
  EventId schedule(Duration d, std::coroutine_handle<> h);
  /// Resume `h` at the current virtual time, after already-queued items.
  EventId schedule_now(std::coroutine_handle<> h) { return schedule({0}, h); }
  /// Run `fn` after `d` of virtual time.
  EventId schedule_call(Duration d, std::function<void()> fn);

  /// Drop a not-yet-fired item. Safe to call on an already-fired id.
  void cancel_event(EventId id);

  /// Process events until the queue drains. Returns number processed.
  std::uint64_t run();
  /// Process events with time <= limit; clock ends at min(limit, last event).
  std::uint64_t run_until(TimePoint limit);
  /// Process a single event if one exists; returns false on empty queue.
  bool step();

  [[nodiscard]] bool empty() const { return live_items_ == 0; }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Item {
    TimePoint at;
    EventId id;
    std::coroutine_handle<> handle;      // one of handle/fn is set
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at.ns != b.at.ns) return a.at.ns > b.at.ns;
      return a.id > b.id;
    }
  };

  bool pop_one(Item& out);
  void dispatch(Item& item);

  TimePoint now_{};
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t live_items_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::unordered_set<EventId> dead_;
};

}  // namespace dstage::sim
