// Unbounded FIFO channel between simulated processes — the mailbox primitive
// under every RPC endpoint. send() never blocks; recv() suspends until a
// value arrives or the receiver is killed.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/cancel.hpp"
#include "sim/engine.hpp"

namespace dstage::sim {

template <class T>
class Channel {
 public:
  explicit Channel(Engine& eng) : eng_(&eng) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  class RecvAwaiter : public CancelWaiter {
   public:
    RecvAwaiter(Channel& ch, CancelToken* tok) : ch_(&ch), tok_(tok) {}

    [[nodiscard]] bool await_ready() {
      if (tok_ != nullptr && tok_->cancelled()) {
        cancelled_ = true;
        return true;
      }
      if (!ch_->items_.empty()) {
        value_.emplace(std::move(ch_->items_.front()));
        ch_->items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      ch_->waiters_.push_back(this);
      if (tok_ != nullptr) tok_->add(this);
    }
    T await_resume() {
      if (tok_ != nullptr) tok_->remove(this);
      if (cancelled_) throw Cancelled{};
      return std::move(*value_);
    }

    void on_cancel() override {
      cancelled_ = true;
      ch_->remove_waiter(this);
      ch_->eng_->schedule_now(handle_);
    }

   private:
    friend class Channel;
    Channel* ch_;
    CancelToken* tok_;
    std::coroutine_handle<> handle_;
    std::optional<T> value_;
    bool cancelled_ = false;
  };

  /// Enqueue a value; wakes the oldest waiting receiver, if any.
  void send(T v) {
    if (!waiters_.empty()) {
      RecvAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->value_.emplace(std::move(v));
      if (w->tok_ != nullptr) w->tok_->remove(w);
      eng_->schedule_now(w->handle_);
    } else {
      items_.push_back(std::move(v));
    }
  }

  [[nodiscard]] RecvAwaiter recv(CancelToken* tok) {
    return RecvAwaiter{*this, tok};
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t waiting_receivers() const {
    return waiters_.size();
  }

 private:
  void remove_waiter(RecvAwaiter* w) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == w) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Engine* eng_;
  std::deque<T> items_;
  std::deque<RecvAwaiter*> waiters_;
};

}  // namespace dstage::sim
