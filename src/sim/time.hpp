// Virtual time for the discrete-event engine. Integer nanoseconds keep the
// simulation exactly deterministic across runs and platforms (no FP drift in
// event ordering), which the replay-equivalence tests rely on.
#pragma once

#include <cstdint>

namespace dstage::sim {

/// Signed span of virtual time, in nanoseconds.
struct Duration {
  std::int64_t ns = 0;

  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns) * 1e-9;
  }
  friend constexpr Duration operator+(Duration a, Duration b) {
    return {a.ns + b.ns};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return {a.ns - b.ns};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return {a.ns * k};
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;
};

constexpr Duration nanoseconds(std::int64_t v) { return {v}; }
constexpr Duration microseconds(std::int64_t v) { return {v * 1'000}; }
constexpr Duration milliseconds(std::int64_t v) { return {v * 1'000'000}; }
constexpr Duration seconds(std::int64_t v) { return {v * 1'000'000'000}; }

/// Rounded conversion from fractional seconds (cost-model outputs).
constexpr Duration from_seconds(double s) {
  return {static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}

/// Instant on the virtual clock.
struct TimePoint {
  std::int64_t ns = 0;

  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns) * 1e-9;
  }
  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return {t.ns + d.ns};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return {a.ns - b.ns};
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
};

}  // namespace dstage::sim
