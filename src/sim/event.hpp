// One-shot broadcast event and a reusable barrier. The barrier models the
// pair of synchronizing barriers that global coordinated checkpointing
// wraps around its snapshots (Section II of the paper).
#pragma once

#include <coroutine>
#include <deque>

#include "sim/cancel.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"

namespace dstage::sim {

/// One-shot event: wait() suspends until set() fires; waits after set()
/// complete immediately.
class OneShotEvent {
 public:
  explicit OneShotEvent(Engine& eng) : eng_(&eng) {}
  OneShotEvent(const OneShotEvent&) = delete;
  OneShotEvent& operator=(const OneShotEvent&) = delete;

  class WaitAwaiter : public CancelWaiter {
   public:
    WaitAwaiter(OneShotEvent& ev, CancelToken* tok) : ev_(&ev), tok_(tok) {}

    [[nodiscard]] bool await_ready() {
      if (tok_ != nullptr && tok_->cancelled()) {
        cancelled_ = true;
        return true;
      }
      return ev_->set_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      ev_->waiters_.push_back(this);
      if (tok_ != nullptr) tok_->add(this);
    }
    void await_resume() {
      if (tok_ != nullptr) tok_->remove(this);
      if (cancelled_) throw Cancelled{};
    }

    void on_cancel() override {
      cancelled_ = true;
      ev_->remove_waiter(this);
      ev_->eng_->schedule_now(handle_);
    }

   private:
    friend class OneShotEvent;
    OneShotEvent* ev_;
    CancelToken* tok_;
    std::coroutine_handle<> handle_;
    bool cancelled_ = false;
  };

  void set() {
    if (set_) return;
    set_ = true;
    std::deque<WaitAwaiter*> pending;
    pending.swap(waiters_);
    for (WaitAwaiter* w : pending) {
      if (w->tok_ != nullptr) w->tok_->remove(w);
      eng_->schedule_now(w->handle_);
    }
  }

  [[nodiscard]] bool is_set() const { return set_; }
  [[nodiscard]] WaitAwaiter wait(CancelToken* tok) {
    return WaitAwaiter{*this, tok};
  }

 private:
  void remove_waiter(WaitAwaiter* w) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == w) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Engine* eng_;
  bool set_ = false;
  std::deque<WaitAwaiter*> waiters_;
};

/// Reusable N-party barrier with generation counting. A participant that is
/// killed while waiting is unwound via its token; the executor is expected
/// to rebuild the barrier when group membership changes.
class Barrier {
 public:
  Barrier(Engine& eng, int parties) : eng_(&eng), parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  class ArriveAwaiter : public CancelWaiter {
   public:
    ArriveAwaiter(Barrier& b, CancelToken* tok) : b_(&b), tok_(tok) {}

    [[nodiscard]] bool await_ready() {
      if (tok_ != nullptr && tok_->cancelled()) {
        cancelled_ = true;
        return true;
      }
      if (b_->arrived_ + 1 >= b_->parties_) {
        // Last arrival releases the whole generation without suspending.
        b_->release_all();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      ++b_->arrived_;
      b_->waiters_.push_back(this);
      if (tok_ != nullptr) tok_->add(this);
    }
    void await_resume() {
      if (tok_ != nullptr) tok_->remove(this);
      if (cancelled_) throw Cancelled{};
    }

    void on_cancel() override {
      cancelled_ = true;
      b_->remove_waiter(this);
      --b_->arrived_;
      b_->eng_->schedule_now(handle_);
    }

   private:
    friend class Barrier;
    Barrier* b_;
    CancelToken* tok_;
    std::coroutine_handle<> handle_;
    bool cancelled_ = false;
  };

  /// co_await barrier.arrive_and_wait(tok)
  [[nodiscard]] ArriveAwaiter arrive_and_wait(CancelToken* tok) {
    return ArriveAwaiter{*this, tok};
  }

  [[nodiscard]] int parties() const { return parties_; }
  [[nodiscard]] int arrived() const { return arrived_; }
  /// Change membership (e.g. after recovery rebuilds the group). If the
  /// waiters already satisfy the new size, the generation releases now.
  void set_parties(int parties) {
    parties_ = parties;
    if (arrived_ >= parties_ && arrived_ > 0) release_all();
  }

 private:
  void release_all() {
    std::deque<ArriveAwaiter*> pending;
    pending.swap(waiters_);
    arrived_ = 0;
    for (ArriveAwaiter* w : pending) {
      if (w->tok_ != nullptr) w->tok_->remove(w);
      eng_->schedule_now(w->handle_);
    }
  }
  void remove_waiter(ArriveAwaiter* w) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == w) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Engine* eng_;
  int parties_;
  int arrived_ = 0;
  std::deque<ArriveAwaiter*> waiters_;
};

}  // namespace dstage::sim
