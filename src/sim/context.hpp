// Execution context threaded through every simulated activity: the engine
// (clock + scheduler) plus the cancellation token of the owning virtual
// process. All awaitables take the context so a process kill interrupts any
// suspension point.
#pragma once

#include <coroutine>

#include "sim/cancel.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dstage::sim {

/// Awaitable pause of virtual time; wakes early (throwing Cancelled) if the
/// owning process is killed.
class DelayAwaiter : public CancelWaiter {
 public:
  DelayAwaiter(Engine& eng, CancelToken* tok, Duration d)
      : eng_(&eng), tok_(tok), d_(d) {}

  [[nodiscard]] bool await_ready() {
    if (tok_ != nullptr && tok_->cancelled()) {
      cancelled_ = true;
      return true;
    }
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) {
    handle_ = h;
    timer_ = eng_->schedule(d_, h);
    if (tok_ != nullptr) tok_->add(this);
  }
  void await_resume() {
    if (tok_ != nullptr) tok_->remove(this);
    if (cancelled_) throw Cancelled{};
  }

  void on_cancel() override {
    cancelled_ = true;
    eng_->cancel_event(timer_);
    eng_->schedule_now(handle_);
  }

 private:
  Engine* eng_;
  CancelToken* tok_;
  Duration d_;
  std::coroutine_handle<> handle_;
  EventId timer_ = 0;
  bool cancelled_ = false;
};

struct Ctx {
  Engine* eng = nullptr;
  CancelToken* tok = nullptr;

  [[nodiscard]] TimePoint now() const { return eng->now(); }

  /// co_await ctx.delay(d): advance this process by d of virtual time.
  [[nodiscard]] DelayAwaiter delay(Duration d) const {
    return DelayAwaiter{*eng, tok, d};
  }

  /// Throws Cancelled when the owning process has been killed. Call at the
  /// top of long compute sections that otherwise would not hit an await.
  void check() const {
    if (tok != nullptr && tok->cancelled()) throw Cancelled{};
  }

  /// Context for the same process but a different (e.g. system) token.
  [[nodiscard]] Ctx with_token(CancelToken* t) const { return Ctx{eng, t}; }
};

}  // namespace dstage::sim
