// Cooperative cancellation, used to model fail-stop process crashes. Killing
// a virtual process cancels its token; whatever awaitable the process is
// suspended on resumes immediately and throws Cancelled, unwinding the
// coroutine stack (RAII releases any held resources) until the process's
// root task completes exceptionally.
#pragma once

#include <algorithm>
#include <exception>
#include <vector>

namespace dstage::sim {

/// Thrown inside a coroutine whose CancelToken was cancelled.
struct Cancelled : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "sim process cancelled";
  }
};

/// Implemented by suspended awaiters so cancel() can wake them.
class CancelWaiter {
 public:
  /// Called exactly once, synchronously, from CancelToken::cancel(). The
  /// implementation must deregister itself from any wait queue and schedule
  /// its own resumption with a cancelled flag set.
  virtual void on_cancel() = 0;

 protected:
  ~CancelWaiter() = default;
};

class CancelToken {
 public:
  [[nodiscard]] bool cancelled() const { return cancelled_; }

  /// Marks the token cancelled and wakes every registered waiter. Idempotent.
  void cancel() {
    if (cancelled_) return;
    cancelled_ = true;
    // Waiters deregister themselves; iterate over a moved-out copy so
    // on_cancel() may mutate the live list safely.
    std::vector<CancelWaiter*> pending;
    pending.swap(waiters_);
    for (CancelWaiter* w : pending) w->on_cancel();
  }

  /// Re-arms a token for a process slot being recycled from the spare pool.
  void reset() {
    cancelled_ = false;
    waiters_.clear();
  }

  void add(CancelWaiter* w) { waiters_.push_back(w); }
  void remove(CancelWaiter* w) {
    auto it = std::find(waiters_.begin(), waiters_.end(), w);
    if (it != waiters_.end()) waiters_.erase(it);
  }

 private:
  bool cancelled_ = false;
  std::vector<CancelWaiter*> waiters_;
};

}  // namespace dstage::sim
