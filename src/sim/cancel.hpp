// Cooperative cancellation, used to model fail-stop process crashes. Killing
// a virtual process cancels its token; whatever awaitable the process is
// suspended on resumes immediately and throws Cancelled, unwinding the
// coroutine stack (RAII releases any held resources) until the process's
// root task completes exceptionally.
#pragma once

#include <exception>
#include <vector>

namespace dstage::sim {

/// Thrown inside a coroutine whose CancelToken was cancelled.
struct Cancelled : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "sim process cancelled";
  }
};

/// Implemented by suspended awaiters so cancel() can wake them. Waiters are
/// linked intrusively into their token's list: registration and removal are
/// O(1), which matters when a component keeps thousands of fragment RPCs
/// in flight (the old vector + linear find made every completed wait scan
/// its siblings — quadratic in the in-flight count).
class CancelWaiter {
 public:
  /// Called exactly once, synchronously, from CancelToken::cancel(). The
  /// implementation must deregister itself from any wait queue and schedule
  /// its own resumption with a cancelled flag set.
  virtual void on_cancel() = 0;

 protected:
  ~CancelWaiter() = default;

 private:
  friend class CancelToken;
  CancelWaiter* prev_ = nullptr;
  CancelWaiter* next_ = nullptr;
  bool linked_ = false;
};

class CancelToken {
 public:
  [[nodiscard]] bool cancelled() const { return cancelled_; }

  /// Marks the token cancelled and wakes every registered waiter, in
  /// registration order. Idempotent.
  void cancel() {
    if (cancelled_) return;
    cancelled_ = true;
    // Waiters deregister themselves; snapshot the chain and detach it
    // first so on_cancel() may mutate the live list safely. Wake order is
    // registration order — identical to the historical vector walk, so
    // crash schedules (and trace digests) are unchanged.
    std::vector<CancelWaiter*> pending;
    for (CancelWaiter* w = head_; w != nullptr; w = w->next_) {
      pending.push_back(w);
    }
    unlink_all();
    for (CancelWaiter* w : pending) w->on_cancel();
  }

  /// Re-arms a token for a process slot being recycled from the spare pool.
  void reset() {
    cancelled_ = false;
    unlink_all();
  }

  void add(CancelWaiter* w) {
    if (w->linked_) return;
    w->linked_ = true;
    w->prev_ = tail_;
    w->next_ = nullptr;
    if (tail_ != nullptr) {
      tail_->next_ = w;
    } else {
      head_ = w;
    }
    tail_ = w;
  }

  void remove(CancelWaiter* w) {
    if (!w->linked_) return;
    if (w->prev_ != nullptr) {
      w->prev_->next_ = w->next_;
    } else {
      head_ = w->next_;
    }
    if (w->next_ != nullptr) {
      w->next_->prev_ = w->prev_;
    } else {
      tail_ = w->prev_;
    }
    w->prev_ = w->next_ = nullptr;
    w->linked_ = false;
  }

 private:
  void unlink_all() {
    for (CancelWaiter* w = head_; w != nullptr;) {
      CancelWaiter* next = w->next_;
      w->prev_ = w->next_ = nullptr;
      w->linked_ = false;
      w = next;
    }
    head_ = tail_ = nullptr;
  }

  bool cancelled_ = false;
  CancelWaiter* head_ = nullptr;
  CancelWaiter* tail_ = nullptr;
};

}  // namespace dstage::sim
