#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace dstage::sim {

namespace {
constexpr std::size_t kSlabFrames = 1024;
}  // namespace

Engine::~Engine() {
  // Frames still queued hold live callables; cancelled ones were already
  // discarded at pop-skip time or are still queued too (lazy deletion
  // only marks the id). Either way, every frame left in the heap owns its
  // callable exactly once.
  for (const Item& item : heap_) {
    if (item.is_frame) {
      auto* frame = static_cast<CallFrame*>(item.target);
      frame->discard(frame);
    }
  }
}

void Engine::check_delay(Duration d) {
  if (d.ns < 0) throw std::invalid_argument("negative delay");
}

Engine::CallFrame* Engine::alloc_frame() {
  if (free_frames_ == nullptr) {
    slabs_.push_back(std::make_unique<CallFrame[]>(kSlabFrames));
    CallFrame* slab = slabs_.back().get();
    for (std::size_t i = 0; i < kSlabFrames; ++i) {
      slab[i].next_free = free_frames_;
      free_frames_ = &slab[i];
    }
  }
  CallFrame* frame = free_frames_;
  free_frames_ = frame->next_free;
  return frame;
}

void Engine::push_item(const Item& item) {
  // Hole insertion: shift ancestors down and write the item once, rather
  // than swapping 32-byte entries at every level.
  std::size_t i = heap_.size();
  heap_.push_back(item);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], item)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

EventId Engine::schedule(Duration d, std::coroutine_handle<> h) {
  check_delay(d);
  const EventId id = next_id_++;
  push_item(Item{now_.ns + d.ns, id, h.address(), /*is_frame=*/false});
  ++live_items_;
  return id;
}

void Engine::cancel_event(EventId id) {
  if (id == 0 || id >= next_id_) return;
  // Lazy deletion: remember the id and skip it when popped.
  if (dead_.insert(id).second && live_items_ > 0) --live_items_;
}

bool Engine::pop_one(Item& out) {
  while (!heap_.empty()) {
    out = heap_.front();
    // Pop-min with a hole: sift the last leaf's slot down from the root,
    // writing it exactly once at its final position.
    const Item last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      while (true) {
        const std::size_t l = 2 * i + 1;
        if (l >= n) break;
        const std::size_t r = l + 1;
        const std::size_t best =
            (r < n && later(heap_[l], heap_[r])) ? r : l;
        if (!later(last, heap_[best])) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    if (!dead_.empty()) {
      if (auto it = dead_.find(out.id); it != dead_.end()) {
        dead_.erase(it);
        if (out.is_frame) {
          auto* frame = static_cast<CallFrame*>(out.target);
          frame->discard(frame);
          recycle_frame(frame);
        }
        continue;
      }
    }
    --live_items_;
    return true;
  }
  return false;
}

void Engine::dispatch(const Item& item) {
  assert(item.at_ns >= now_.ns);
  now_.ns = item.at_ns;
  ++processed_;
  if (item.is_frame) {
    auto* frame = static_cast<CallFrame*>(item.target);
    frame->invoke(frame, this);
  } else {
    std::coroutine_handle<>::from_address(item.target).resume();
  }
}

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  Item item;
  while (pop_one(item)) {
    dispatch(item);
    ++n;
  }
  return n;
}

std::uint64_t Engine::run_until(TimePoint limit) {
  std::uint64_t n = 0;
  Item item;
  // Peek-first: dead items at the top are drained by pop_one, and a live
  // top beyond the limit is simply never popped (the historical code
  // popped and re-pushed it).
  while (!heap_.empty() && heap_.front().at_ns <= limit.ns) {
    if (!pop_one(item)) break;
    if (item.at_ns > limit.ns) {
      // pop_one skipped dead items and surfaced one beyond the limit; put
      // it back untouched.
      push_item(item);
      ++live_items_;
      break;
    }
    dispatch(item);
    ++n;
  }
  if (now_ < limit) now_ = limit;
  return n;
}

bool Engine::step() {
  Item item;
  if (!pop_one(item)) return false;
  dispatch(item);
  return true;
}

}  // namespace dstage::sim
