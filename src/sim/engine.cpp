#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace dstage::sim {

EventId Engine::schedule(Duration d, std::coroutine_handle<> h) {
  if (d.ns < 0) throw std::invalid_argument("negative delay");
  const EventId id = next_id_++;
  queue_.push(Item{now_ + d, id, h, {}});
  ++live_items_;
  return id;
}

EventId Engine::schedule_call(Duration d, std::function<void()> fn) {
  if (d.ns < 0) throw std::invalid_argument("negative delay");
  const EventId id = next_id_++;
  queue_.push(Item{now_ + d, id, nullptr, std::move(fn)});
  ++live_items_;
  return id;
}

void Engine::cancel_event(EventId id) {
  if (id == 0 || id >= next_id_) return;
  // Lazy deletion: remember the id and skip it when popped.
  if (dead_.insert(id).second && live_items_ > 0) --live_items_;
}

bool Engine::pop_one(Item& out) {
  while (!queue_.empty()) {
    out = queue_.top();
    queue_.pop();
    if (auto it = dead_.find(out.id); it != dead_.end()) {
      dead_.erase(it);
      continue;
    }
    --live_items_;
    return true;
  }
  return false;
}

void Engine::dispatch(Item& item) {
  assert(item.at >= now_);
  now_ = item.at;
  ++processed_;
  if (item.handle) {
    item.handle.resume();
  } else {
    item.fn();
  }
}

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  Item item;
  while (pop_one(item)) {
    dispatch(item);
    ++n;
  }
  return n;
}

std::uint64_t Engine::run_until(TimePoint limit) {
  std::uint64_t n = 0;
  Item item;
  while (!queue_.empty() && queue_.top().at <= limit) {
    if (!pop_one(item)) break;
    if (item.at > limit) {
      // pop_one skipped dead items and surfaced one beyond the limit; put
      // it back untouched.
      queue_.push(item);
      ++live_items_;
      break;
    }
    dispatch(item);
    ++n;
  }
  if (now_ < limit) now_ = limit;
  return n;
}

bool Engine::step() {
  Item item;
  if (!pop_one(item)) return false;
  dispatch(item);
  return true;
}

}  // namespace dstage::sim
