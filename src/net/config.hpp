// Transport feature gates carried by WorkflowSpec (mirrors the obs gating
// pattern: a plain struct, everything off by default so golden-trace
// digests see exactly the ungated event stream).
#pragma once

namespace dstage::net {

struct Config {
  /// Coalesce same-destination chunk puts of one producer write into a
  /// single BatchPut message (one per-message overhead per server instead
  /// of one per chunk). Off by default: with batching disabled the wire
  /// event stream is byte-identical to the pre-batching transport.
  bool batching = false;
};

}  // namespace dstage::net
