#include "net/message.hpp"

namespace dstage::net {

namespace {
/// Descriptor-only message or ack: a verbs work request with inline header.
constexpr std::uint64_t kDescriptor = 64;
/// Request/response naming an object (descriptor + geometry + keys).
constexpr std::uint64_t kObjectHeader = 128;
/// Serialized event-queue record (kind, app, version, chk id, 6 box
/// coordinates, variable name slot) — matches wlog's metadata accounting.
constexpr std::uint64_t kEventRecord = 96;
}  // namespace

std::uint64_t wire_size(const PutRequest& m) {
  return kObjectHeader + m.chunk.nominal_bytes;
}
std::uint64_t wire_size(const GetRequest&) { return kObjectHeader; }
std::uint64_t wire_size(const CheckpointEvent&) { return kDescriptor; }
std::uint64_t wire_size(const RecoveryEvent&) { return kDescriptor; }
std::uint64_t wire_size(const RollbackRequest&) { return kDescriptor; }
std::uint64_t wire_size(const FragmentPut& m) { return m.nominal_bytes; }
std::uint64_t wire_size(const FragmentPrune&) { return kDescriptor; }
std::uint64_t wire_size(const QueueBackup&) { return kEventRecord; }
std::uint64_t wire_size(const RecoveryPull&) { return kDescriptor; }
std::uint64_t wire_size(const QueryRequest&) { return kDescriptor; }

std::uint64_t wire_size(const BatchPut& m) {
  // One batch header plus a per-chunk sub-header: a single-chunk batch
  // costs exactly what the equivalent PutRequest does.
  std::uint64_t bytes = kDescriptor;
  for (const Chunk& chunk : m.chunks) bytes += kDescriptor + chunk.nominal_bytes;
  return bytes;
}

std::uint64_t wire_size(const SpillPut& m) {
  // Spilled log chunks travel in their stored (possibly codec-encoded)
  // representation: the PFS write is charged the encoded footprint.
  return kObjectHeader + m.chunk.accounted_bytes();
}
std::uint64_t wire_size(const SpillFetch&) { return kObjectHeader; }
std::uint64_t wire_size(const SpillPrune&) { return kDescriptor; }

std::uint64_t wire_size(const JoinGroup&) { return kDescriptor; }
std::uint64_t wire_size(const RetireServer&) { return kDescriptor; }
std::uint64_t wire_size(const MembershipUpdate& m) {
  return kDescriptor + 4 * static_cast<std::uint64_t>(m.active.size());
}
std::uint64_t wire_size(const MembershipQuery&) { return kDescriptor; }
std::uint64_t wire_size(const FragmentFetch&) { return kObjectHeader; }
std::uint64_t wire_size(const ResilverPut& m) {
  // Log chunks resilver in their stored (possibly codec-encoded) form.
  return kObjectHeader + m.chunk.accounted_bytes();
}
std::uint64_t wire_size(const CkptStoreLocal&) { return kDescriptor; }
std::uint64_t wire_size(const CkptXorShard& m) {
  // The parity share really travels to the partner group.
  return kDescriptor + m.nominal_bytes;
}
std::uint64_t wire_size(const CkptDrainAck&) { return kDescriptor; }

std::uint64_t wire_size(const PutResponse&) { return kDescriptor; }
std::uint64_t wire_size(const SpillAck&) { return kDescriptor; }

std::uint64_t wire_size(const SpillFetchResponse& m) {
  // Payload fetches carry real chunk bytes; index_only fetches carry a
  // descriptor per chunk (data pointer absent).
  std::uint64_t bytes = kObjectHeader;
  for (const Chunk& chunk : m.chunks)
    bytes += kDescriptor + (chunk.data ? chunk.accounted_bytes() : 0);
  return bytes;
}

std::uint64_t wire_size(const CheckpointAck&) { return kDescriptor; }
std::uint64_t wire_size(const RecoveryAck&) { return kDescriptor; }
std::uint64_t wire_size(const RollbackAck&) { return kDescriptor; }

std::uint64_t wire_size(const GetResponse& m) {
  std::uint64_t bytes = kObjectHeader;
  for (const Chunk& piece : m.pieces) bytes += piece.nominal_bytes;
  return bytes;
}

std::uint64_t wire_size(const BatchPutResponse& m) {
  return kDescriptor + 8 * static_cast<std::uint64_t>(m.results.size());
}

std::uint64_t wire_size(const RecoveryPullResponse& m) {
  std::uint64_t bytes = kObjectHeader;
  for (const FragmentPut& f : m.fragments) bytes += f.nominal_bytes;
  bytes += kEventRecord * static_cast<std::uint64_t>(m.events.size());
  return bytes;
}

std::uint64_t wire_size(const GroupChangeAck&) { return kDescriptor; }
std::uint64_t wire_size(const MembershipInfo& m) {
  return kDescriptor + 4 * static_cast<std::uint64_t>(m.active.size());
}
std::uint64_t wire_size(const FragmentFetchResponse& m) {
  std::uint64_t bytes = kObjectHeader;
  for (const FragmentPut& f : m.fragments) bytes += f.nominal_bytes;
  return bytes;
}
std::uint64_t wire_size(const ResilverAck&) { return kDescriptor; }

std::uint64_t wire_size(const QueryResponse& m) {
  return kDescriptor +
         4 * static_cast<std::uint64_t>(m.store_versions.size() +
                                        m.logged_versions.size());
}

std::uint64_t serialized_size(const Message& m) {
  return std::visit([](const auto& alt) { return wire_size(alt); }, m);
}

const char* message_name(const PutRequest&) { return "put"; }
const char* message_name(const GetRequest&) { return "get"; }
const char* message_name(const CheckpointEvent&) { return "checkpoint"; }
const char* message_name(const RecoveryEvent&) { return "recovery"; }
const char* message_name(const RollbackRequest&) { return "rollback"; }
const char* message_name(const FragmentPut&) { return "fragment_put"; }
const char* message_name(const FragmentPrune&) { return "fragment_prune"; }
const char* message_name(const QueueBackup&) { return "queue_backup"; }
const char* message_name(const RecoveryPull&) { return "recovery_pull"; }
const char* message_name(const QueryRequest&) { return "query"; }
const char* message_name(const BatchPut&) { return "batch_put"; }
const char* message_name(const SpillPut&) { return "spill_put"; }
const char* message_name(const SpillFetch&) { return "spill_fetch"; }
const char* message_name(const SpillPrune&) { return "spill_prune"; }
const char* message_name(const JoinGroup&) { return "join_group"; }
const char* message_name(const RetireServer&) { return "retire_server"; }
const char* message_name(const MembershipUpdate&) {
  return "membership_update";
}
const char* message_name(const MembershipQuery&) {
  return "membership_query";
}
const char* message_name(const FragmentFetch&) { return "fragment_fetch"; }
const char* message_name(const ResilverPut&) { return "resilver_put"; }
const char* message_name(const CkptStoreLocal&) { return "ckpt_store_local"; }
const char* message_name(const CkptXorShard&) { return "ckpt_xor_shard"; }
const char* message_name(const CkptDrainAck&) { return "ckpt_drain_ack"; }

const char* message_name(const Message& m) {
  return std::visit([](const auto& alt) { return message_name(alt); }, m);
}

}  // namespace dstage::net
