#include "net/fabric.hpp"

#include <stdexcept>
#include <utility>

namespace dstage::net {

Fabric::Fabric(sim::Engine& eng, Params params)
    : eng_(&eng), params_(params) {
  if (params_.injection_bw <= 0)
    throw std::invalid_argument("injection bandwidth must be positive");
}

NodeId Fabric::add_node() {
  nics_.push_back(std::make_unique<sim::Resource>(*eng_, 1));
  node_bw_.push_back(params_.injection_bw);
  return static_cast<NodeId>(nics_.size() - 1);
}

void Fabric::set_node_injection_bw(NodeId node, double bytes_per_sec) {
  if (node < 0 || node >= node_count()) throw std::out_of_range("unknown node");
  if (bytes_per_sec <= 0)
    throw std::invalid_argument("injection bandwidth must be positive");
  node_bw_[static_cast<std::size_t>(node)] = bytes_per_sec;
}

double Fabric::node_injection_bw(NodeId node) const {
  if (node < 0 || node >= node_count()) throw std::out_of_range("unknown node");
  return node_bw_[static_cast<std::size_t>(node)];
}

EndpointId Fabric::add_endpoint(NodeId node) {
  if (node < 0 || node >= node_count())
    throw std::out_of_range("unknown node");
  const auto id = static_cast<EndpointId>(endpoints_.size());
  endpoints_.push_back(std::make_unique<Endpoint>(*eng_, id, node));
  return id;
}

Endpoint& Fabric::endpoint(EndpointId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= endpoints_.size())
    throw std::out_of_range("unknown endpoint");
  return *endpoints_[static_cast<std::size_t>(id)];
}

sim::Duration Fabric::injection_time(std::uint64_t bytes) const {
  return params_.per_message_overhead +
         sim::from_seconds(static_cast<double>(bytes) / params_.injection_bw);
}

sim::Duration Fabric::injection_time(std::uint64_t bytes, NodeId node) const {
  return params_.per_message_overhead +
         sim::from_seconds(static_cast<double>(bytes) /
                           node_bw_[static_cast<std::size_t>(node)]);
}

sim::Task<void> Fabric::send_impl(sim::Ctx ctx, EndpointId src, EndpointId dst,
                                  Message payload) {
  const std::uint64_t bytes = serialized_size(payload);
  Endpoint& from = endpoint(src);
  Endpoint* target = &endpoint(dst);
  if (from.node() == target->node()) {
    // Same node: shared-memory handoff, no NIC, no wire latency. The
    // message moves straight into the mailbox (no deliver closure, no
    // heap envelope) — the common fast path for co-located endpoints.
    ++packets_sent_;
    bytes_sent_ += bytes;
    target->mailbox_.send(Packet{src, std::move(payload), bytes});
    co_return;
  }
  auto deliver = [target, src, bytes,
                  p = std::make_shared<Message>(std::move(payload))] {
    target->mailbox_.send(Packet{src, std::move(*p), bytes});
  };
  co_await transmit_impl(ctx, src, dst, bytes, std::move(deliver));
}

sim::Task<void> Fabric::transmit_impl(sim::Ctx ctx, EndpointId src, EndpointId dst,
                                 std::uint64_t bytes,
                                 std::function<void()> deliver) {
  Endpoint& from = endpoint(src);
  Endpoint& to = endpoint(dst);
  ++packets_sent_;
  bytes_sent_ += bytes;

  if (from.node() == to.node()) {
    // Same node: shared-memory handoff, no NIC, no wire latency.
    deliver();
    co_return;
  }

  {
    auto nic =
        co_await nics_[static_cast<std::size_t>(from.node())]->acquire(
            ctx.tok, 1);
    co_await ctx.delay(injection_time(bytes, from.node()));
  }
  // Delivery fires even if the sender is killed from here on: the bytes are
  // already on the wire.
  eng_->schedule_call(params_.latency, std::move(deliver));
}

sim::Task<void> Fabric::notify_impl(sim::Ctx ctx, EndpointId src,
                                    EndpointId dst,
                                    std::function<void()> deliver) {
  Endpoint& from = endpoint(src);
  Endpoint& to = endpoint(dst);
  ++packets_sent_;
  if (from.node() == to.node()) {
    deliver();
    co_return;
  }
  co_await ctx.delay(params_.per_message_overhead);
  eng_->schedule_call(params_.latency, std::move(deliver));
}

}  // namespace dstage::net
