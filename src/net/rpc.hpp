// Unified RPC transport over the fabric. One Rpc per endpoint owner
// (staging client or server) routes every message — typed request/response
// calls, one-way sends, and response fulfilment — through the codec, and
// owns the timeout/retry/backoff loop that used to be re-implemented by
// every caller.
//
// GCC 12 note: every public entry point is a plain-function shim over a
// private coroutine (GCC 12 double-destroys *prvalue* arguments bound to
// by-value coroutine parameters; the shim materializes caller temporaries
// into named parameters and moves them — xvalues — across the coroutine
// boundary). Keep it that way when adding entry points.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/fabric.hpp"
#include "net/message.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dstage::net {

/// Retry discipline for a call(). The defaults reproduce the historical
/// client behavior: timeout 0 waits forever (no retries — coupling reads
/// legitimately block for long stretches), and a zero backoff re-sends
/// immediately on timeout.
struct RetryPolicy {
  /// Per-attempt response timeout; <= 0 waits forever on the first send.
  sim::Duration timeout{0};
  /// Total sends before the call gives up (first attempt included).
  int max_attempts = 6;
  /// Delay before re-sending, doubled after every failed attempt
  /// (0 = immediate re-send).
  sim::Duration backoff{0};
  /// Separate cap for memory-governor RetryLater rejections. These are
  /// answered requests, not lost ones, so they never consume timeout
  /// attempts; they resolve when consumer checkpoints let GC (or a spill)
  /// free memory, which can legitimately take many backoff rounds.
  int max_backpressure_retries = 32;
};

struct RpcStats {
  std::uint64_t calls = 0;      // call<Req>() invocations
  std::uint64_t oneways = 0;    // fire-and-forget send()s
  std::uint64_t responses = 0;  // calls answered
  std::uint64_t retries = 0;    // re-sends after a timeout
  std::uint64_t exhausted = 0;  // calls that gave up after max_attempts
  /// Backoff waits honoring a RetryLater (memory-governor backpressure).
  std::uint64_t backpressure_waits = 0;
};

/// Backpressure backoff base when the policy's backoff is 0 (immediate
/// re-send would hammer a server that just said "not now").
inline constexpr sim::Duration kBackpressureBackoff = sim::microseconds(200);

/// Responses at or below this ride the control path (RDMA completion
/// notification); larger responses pay NIC bandwidth like any bulk send.
inline constexpr std::uint64_t kControlPathBytes = 256;

class Rpc {
 public:
  Rpc(Fabric& fabric, EndpointId self) : fabric_(&fabric), self_(self) {}

  [[nodiscard]] EndpointId self() const { return self_; }
  [[nodiscard]] const RpcStats& stats() const { return stats_; }

  /// One-way message: pays send-side transport, no response expected.
  sim::Task<void> send(sim::Ctx ctx, EndpointId dst, Message message) {
    return send_impl(ctx, dst, std::move(message));
  }

  /// Typed request/response call. Fills in the request's reply slot (a
  /// fresh one per attempt, so a late response to a lost attempt cannot
  /// satisfy a retry), sends, and waits per `policy`. Throws
  /// std::runtime_error when every attempt times out.
  template <class Req>
  sim::Task<typename Req::Response> call(sim::Ctx ctx, EndpointId dst,
                                         Req request,
                                         RetryPolicy policy = {}) {
    return call_impl<Req>(ctx, dst, std::move(request), policy);
  }

  /// Server side: pay response transport for `value` (codec-sized), then
  /// fulfill the client's reply slot after the wire latency.
  template <class Resp>
  sim::Task<void> fulfill(sim::Ctx ctx, EndpointId dst, ReplyPtr<Resp> reply,
                          Resp value) {
    return fulfill_impl<Resp>(ctx, dst, std::move(reply), std::move(value));
  }

  /// Response-path transport: control path for small messages, bulk
  /// transmit otherwise. `deliver` runs after the wire latency.
  sim::Task<void> respond(sim::Ctx ctx, EndpointId dst, std::uint64_t bytes,
                          std::function<void()> deliver) {
    return respond_impl(ctx, dst, bytes, std::move(deliver));
  }

 private:
  sim::Task<void> send_impl(sim::Ctx ctx, EndpointId dst, Message message);
  sim::Task<void> respond_impl(sim::Ctx ctx, EndpointId dst,
                               std::uint64_t bytes,
                               std::function<void()> deliver);

  template <class Req>
  sim::Task<typename Req::Response> call_impl(sim::Ctx ctx, EndpointId dst,
                                              Req request,
                                              RetryPolicy policy) {
    ++stats_.calls;
    // Cumulative counts drive the exhaustion caps; the *consecutive* streak
    // per error class drives the escalating backoff shift. A timeout after
    // a run of backpressure bounces (or vice versa) is a fresh condition —
    // carrying the other class's escalation over would jump straight to a
    // huge delay for a failure mode that has struck once.
    int timeouts = 0;
    int rejections = 0;
    int timeout_streak = 0;
    int reject_streak = 0;
    for (;;) {
      auto reply = make_reply<typename Req::Response>(*ctx.eng);
      request.reply_to = self_;
      request.reply = reply;
      // The request is retained across attempts; each send carries a copy.
      Message message{request};
      co_await fabric_->send(ctx, self_, dst, std::move(message));
      std::optional<typename Req::Response> value;
      if (policy.timeout.ns <= 0) {
        value.emplace(co_await reply->take(ctx));
      } else {
        value = co_await reply->take_for(ctx, policy.timeout);
      }
      if (!value) {
        if (++timeouts >= policy.max_attempts) {
          ++stats_.exhausted;
          throw std::runtime_error(std::string("rpc ") +
                                   message_name(request) +
                                   " timed out after retries");
        }
        ++stats_.retries;
        ++timeout_streak;
        reject_streak = 0;
        if (policy.backoff.ns > 0) {
          // Exponential backoff: backoff, 2*backoff, 4*backoff, ...
          const int shift = timeout_streak - 1 < 16 ? timeout_streak - 1 : 16;
          co_await ctx.delay(sim::Duration{policy.backoff.ns << shift});
        }
        continue;
      }
      if constexpr (requires { value->retry_later; }) {
        // Memory-governor backpressure: the server answered but refused
        // admission. Not a timeout — wait out the pressure with an
        // escalating backoff, without consuming timeout attempts.
        if (value->retry_later) {
          if (++rejections > policy.max_backpressure_retries) {
            ++stats_.exhausted;
            throw std::runtime_error(
                std::string("rpc ") + message_name(request) +
                " rejected by memory governor after retries");
          }
          ++stats_.backpressure_waits;
          ++reject_streak;
          timeout_streak = 0;
          const std::int64_t base =
              policy.backoff.ns > 0 ? policy.backoff.ns
                                    : kBackpressureBackoff.ns;
          const int shift = reject_streak - 1 < 16 ? reject_streak - 1 : 16;
          co_await ctx.delay(sim::Duration{base << shift});
          continue;
        }
      }
      ++stats_.responses;
      co_return std::move(*value);
    }
  }

  template <class Resp>
  sim::Task<void> fulfill_impl(sim::Ctx ctx, EndpointId dst,
                               ReplyPtr<Resp> reply, Resp value) {
    const std::uint64_t bytes = wire_size(value);
    std::function<void()> deliver = [reply = std::move(reply),
                                     v = std::move(value)]() mutable {
      reply->fulfill(std::move(v));
    };
    co_await respond_impl(ctx, dst, bytes, std::move(deliver));
  }

  Fabric* fabric_;
  EndpointId self_;
  RpcStats stats_;
};

}  // namespace dstage::net
