// The closed wire vocabulary of the staging service. Every packet the
// fabric carries is one alternative of net::Message, so endpoint dispatch
// is an exhaustive std::visit and the modeled serialized size of every
// message (and every response) is computed in exactly one place: the
// wire_size() codec below. Callers never supply byte counts.
//
// Layering: this header sits between reply.hpp (addressing + reply slots)
// and fabric.hpp (which carries Message in its Packet envelope). Both the
// staging layer and the write-ahead log layer build on this vocabulary —
// wlog::LogEvent *is* net::EventRecord, which is what lets QueueBackup
// mirror queue records without a field-for-field flattening.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "net/reply.hpp"
#include "util/geometry.hpp"

namespace dstage::net {

using AppId = int;
using Version = std::uint32_t;
/// Workflow tenant sharing the staging fabric. Tenant 0 is the implicit
/// single-tenant default: every message constructed without an explicit
/// tenant belongs to it, so single-tenant wire traffic is byte-identical
/// to the pre-multi-tenant protocol (the tenant field never contributes
/// to wire_size()).
using TenantId = int;

/// Geometric descriptor: a named, versioned region of the global domain.
struct ObjectDesc {
  std::string var;
  Version version = 0;
  Box region;

  friend bool operator==(const ObjectDesc&, const ObjectDesc&) = default;
};

/// A stored piece of an object. `data` holds real bytes scaled down by the
/// configured mem_scale; `nominal_bytes` is the unscaled size used by all
/// virtual-time cost models and accounting.
struct Chunk {
  std::string var;
  Version version = 0;
  Box region;  // source region this piece covers
  std::uint64_t nominal_bytes = 0;
  /// Paper-scale size of the *stored* representation when the payload is
  /// codec-encoded (wlog compression/delta); 0 means "stored raw", i.e.
  /// same as nominal_bytes. nominal_bytes always describes the raw object,
  /// so read-side cost models and the consistency oracle see unchanged
  /// sizes, while accounting and payload-bearing wire traffic charge the
  /// encoded footprint.
  std::uint64_t stored_bytes = 0;
  std::uint64_t content_key = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> data;

  [[nodiscard]] std::uint64_t physical_bytes() const {
    return data ? data->size() : 0;
  }
  /// Paper-scale bytes this chunk occupies as stored/transferred: the
  /// encoded size when the codec shrank it, the nominal size otherwise.
  [[nodiscard]] std::uint64_t accounted_bytes() const {
    return stored_bytes != 0 ? stored_bytes : nominal_bytes;
  }
};

/// Event-queue record kinds (Section III's queue-based consistency
/// algorithm records these per application).
enum class EventKind { kPut, kGet, kCheckpoint, kRecovery };

/// One event-queue record: the shared POD used both by wlog::EventQueue
/// (as its LogEvent) and by the QueueBackup mirror message.
struct EventRecord {
  EventKind kind = EventKind::kPut;
  AppId app = -1;
  Version version = 0;  // data version; for checkpoints, the app's timestep
  std::string var;
  Box region;
  std::uint64_t nominal_bytes = 0;
  std::uint64_t chk_id = 0;  // W_Chk_ID for checkpoint markers
};

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

struct PutResponse {
  bool applied = false;     // false when suppressed as a replayed duplicate
  bool suppressed = false;  // true when recognized from the replay script
  /// Memory-governor backpressure: the server is above its hard watermark
  /// and refused admission. The put left no trace (no event logged, no
  /// bytes stored); the client must back off and re-send.
  bool retry_later = false;
  /// Elastic membership: the addressed server no longer owns the chunk's
  /// region (the client placed against a stale epoch). Nothing was
  /// applied; the client must refresh its membership view and re-place.
  bool wrong_epoch = false;
  std::uint64_t epoch = 0;  // server's epoch when it rejected
};

struct GetResponse {
  bool found = false;
  std::vector<Chunk> pieces;
  /// True when the pieces were resolved from the data log (replay mode)
  /// rather than the live store.
  bool from_log = false;
  /// Elastic membership: region not owned here anymore — refresh the
  /// placement view and re-issue (see PutResponse::wrong_epoch).
  bool wrong_epoch = false;
  std::uint64_t epoch = 0;
};

struct CheckpointAck {
  std::uint64_t chk_id = 0;
};

struct RecoveryAck {
  /// Number of logged events the server will replay for this app.
  std::size_t replay_events = 0;
};

struct RollbackAck {
  std::size_t versions_dropped = 0;
};

/// Per-chunk results of a coalesced put, in the batch's chunk order.
struct BatchPutResponse {
  std::vector<PutResponse> results;
};

/// Metadata query: which versions of `var` does this server hold?
struct QueryResponse {
  std::vector<Version> store_versions;   // base-store window
  std::vector<Version> logged_versions;  // data-log retention
};

// ---------------------------------------------------------------------------
// Client → server messages. Every request carries the issuing app and a
// Reply the server fulfills after paying response transport costs; the
// transport (net::Rpc) fills reply_to/reply, so application code only
// supplies the payload fields.
// ---------------------------------------------------------------------------

struct PutRequest {
  using Response = PutResponse;
  AppId app = -1;
  Chunk chunk;
  bool logged = false;
  EndpointId reply_to = -1;
  ReplyPtr<PutResponse> reply;
  TenantId tenant = 0;
};

struct GetRequest {
  using Response = GetResponse;
  AppId app = -1;
  ObjectDesc desc;
  bool logged = false;
  EndpointId reply_to = -1;
  ReplyPtr<GetResponse> reply;
  TenantId tenant = 0;
};

/// workflow_check(): a checkpoint event for `app`; the server assigns and
/// records a W_Chk_ID and truncates the app's queue (GC).
struct CheckpointEvent {
  using Response = CheckpointAck;
  AppId app = -1;
  Version version = 0;  // app's timestep at the checkpoint
  EndpointId reply_to = -1;
  ReplyPtr<CheckpointAck> reply;
  // A checkpoint marker plays two roles: it anchors the app's replay
  // script (valid for every checkpoint level) and it advances the GC
  // watermark (only sound for a checkpoint that survives the worst
  // failure the app can suffer). Node-local and emergency checkpoints
  // are wiped by a node failure, whose recovery falls back to the PFS
  // level — announcing them as durable would let GC reclaim logged
  // versions the fallback restart still has to replay.
  bool durable = true;
  TenantId tenant = 0;
};

/// workflow_restart(): app recovered from its latest checkpoint and
/// re-attached; the server switches the app's queue into replay mode.
struct RecoveryEvent {
  using Response = RecoveryAck;
  AppId app = -1;
  Version restored_version = 0;
  EndpointId reply_to = -1;
  ReplyPtr<RecoveryAck> reply;
  TenantId tenant = 0;
};

/// Coordinated-restart support: discard every version newer than
/// `version` so the staging state matches the global snapshot. `tenant`
/// scopes the rollback to one tenant's keys and queues; -1 (the
/// single-tenant default) rolls back everything.
struct RollbackRequest {
  using Response = RollbackAck;
  Version version = 0;
  EndpointId reply_to = -1;
  ReplyPtr<RollbackAck> reply;
  TenantId tenant = -1;
};

// ---------------------------------------------------------------------------
// Inter-server resilience traffic (CoREC-style). Every staged (and logged)
// payload is protected by redundancy fragments pushed to peer servers, and
// each server mirrors its event queues to its successor, so a failed
// staging server can be rebuilt from its peers.
// ---------------------------------------------------------------------------

/// One-way: a redundancy fragment (full replica or RS shard) pushed by the
/// owning server to a peer.
struct FragmentPut {
  int owner = -1;  // staging server index that owns the object
  std::string var;
  Version version = 0;
  Box region;          // the owner's chunk region
  int frag_index = 0;  // 1 .. fragments-1 (the owner's payload is index 0)
  std::uint64_t nominal_bytes = 0;    // paper-scale share for accounting
  std::size_t original_physical = 0;  // owner chunk's physical byte count
  std::uint64_t content_key = 0;      // source chunk key, for verification
  bool logged = false;                // restore into the data log too
  std::shared_ptr<const std::vector<std::uint8_t>> data;  // fragment bytes
};

/// One-way: owner → peers, reclaim fragments of versions <= `upto`.
struct FragmentPrune {
  int owner = -1;
  std::string var;
  Version upto = 0;
};

/// One-way: a mirrored event-queue record (queue resilience). Carries the
/// wlog record verbatim — wlog::LogEvent is net::EventRecord.
struct QueueBackup {
  int owner = -1;
  EventRecord record;
};

struct RecoveryPullResponse {
  std::vector<FragmentPut> fragments;
  std::vector<QueueBackup> events;
};

/// Replacement server → every peer: send back everything you hold on my
/// behalf (fragments + mirrored queue events).
struct RecoveryPull {
  using Response = RecoveryPullResponse;
  int owner = -1;
  EndpointId reply_to = -1;
  ReplyPtr<RecoveryPullResponse> reply;
};

struct QueryRequest {
  using Response = QueryResponse;
  std::string var;
  EndpointId reply_to = -1;
  ReplyPtr<QueryResponse> reply;
  TenantId tenant = 0;
};

/// Opt-in write-path coalescing: every chunk of one producer put that maps
/// to the same destination server travels as one message, paying the
/// fabric's per-message overhead once (see WorkflowSpec::net.batching).
struct BatchPut {
  using Response = BatchPutResponse;
  AppId app = -1;
  bool logged = false;
  std::vector<Chunk> chunks;
  EndpointId reply_to = -1;
  ReplyPtr<BatchPutResponse> reply;
  TenantId tenant = 0;
};

// ---------------------------------------------------------------------------
// Memory-governor spill traffic (staging server ↔ PFS spill gateway). When a
// server crosses its soft memory watermark it evicts cold, reclaim-ineligible
// log versions to the parallel file system; the gateway pays the PFS cost
// model and retains the chunks until the owner prunes them (GC watermark
// advance or rollback). Replay-path gets fault spilled payloads back in.
// ---------------------------------------------------------------------------

struct SpillAck {
  bool ok = false;
};

/// Server → gateway: persist one evicted log chunk on the PFS.
struct SpillPut {
  using Response = SpillAck;
  int owner = -1;  // staging server index that evicted the chunk
  Chunk chunk;
  EndpointId reply_to = -1;
  ReplyPtr<SpillAck> reply;
};

struct SpillFetchResponse {
  /// Full chunks for a payload fetch; descriptor-only chunks (no data) for
  /// an index_only fetch.
  std::vector<Chunk> chunks;
};

/// Server → gateway: read spilled chunks back. A payload fetch names one
/// (var, version) and pays the PFS read cost; an index_only fetch (empty
/// var) returns descriptors for everything the gateway holds on the
/// owner's behalf, letting a replacement server rebuild its spill index.
struct SpillFetch {
  using Response = SpillFetchResponse;
  int owner = -1;
  std::string var;
  Version version = 0;
  bool index_only = false;
  EndpointId reply_to = -1;
  ReplyPtr<SpillFetchResponse> reply;
};

/// One-way, server → gateway: reclaim spilled versions of `var` that are
/// <= `upto` (GC watermark advance) or, with `above` set, > `upto`
/// (rollback).
struct SpillPrune {
  int owner = -1;
  std::string var;
  Version upto = 0;
  bool above = false;
  /// Rollback scoping: with `above` set, -1 prunes every tenant's spilled
  /// versions (single-tenant rollback); >= 0 prunes only keys whose
  /// tenant prefix matches.
  TenantId tenant = -1;
};

// ---------------------------------------------------------------------------
// Elastic group membership (client/tool ↔ GroupManager ↔ servers). The
// membership view is epoch-versioned: control verbs change it, servers and
// clients learn the new epoch via MembershipUpdate / wrong_epoch rejects,
// and the resilver traffic below moves only the cells whose owner changed.
// ---------------------------------------------------------------------------

struct GroupChangeAck {
  bool ok = false;
  std::uint64_t epoch = 0;  // epoch after the change (or current on reject)
  int server = -1;          // the server that joined/retired
};

/// Admit a standby server into the staging group. `server` == -1 lets the
/// GroupManager pick the lowest-numbered standby.
struct JoinGroup {
  using Response = GroupChangeAck;
  int server = -1;
  EndpointId reply_to = -1;
  ReplyPtr<GroupChangeAck> reply;
};

/// Retire an active server: its cells are drained to the survivors before
/// the ack fires; the retiree stays up as a warm standby.
struct RetireServer {
  using Response = GroupChangeAck;
  int server = -1;  // -1 picks the highest-numbered active server
  EndpointId reply_to = -1;
  ReplyPtr<GroupChangeAck> reply;
};

/// One-way, GroupManager → server: the authoritative membership view for
/// `epoch`. Servers use it to re-aim redundancy (mirror successor,
/// fragment round-robin) at the active set only.
struct MembershipUpdate {
  std::uint64_t epoch = 0;
  std::vector<int> active;  // ascending server ids
};

struct MembershipInfo {
  std::uint64_t epoch = 0;
  std::vector<int> active;
};

/// Client → GroupManager: fetch the current membership view (issued after
/// a wrong_epoch reject before re-placing).
struct MembershipQuery {
  using Response = MembershipInfo;
  EndpointId reply_to = -1;
  ReplyPtr<MembershipInfo> reply;
};

struct FragmentFetchResponse {
  std::vector<FragmentPut> fragments;
};

/// Degraded read support: fetch whatever redundancy fragments the
/// addressed peer holds for (`owner`, `var`, `version`) so the reader can
/// reconstruct without waiting for the owner's recovery.
struct FragmentFetch {
  using Response = FragmentFetchResponse;
  int owner = -1;
  std::string var;
  Version version = 0;
  EndpointId reply_to = -1;
  ReplyPtr<FragmentFetchResponse> reply;
};

struct ResilverAck {
  bool ok = false;
  /// Destination governor pressure (governed footprint / soft watermark);
  /// sources back off above 1.0 so resilver yields to foreground puts.
  double pressure = 0;
};

/// Resilver transfer: old owner → new owner, one store/log chunk whose
/// cell changed hands. Acknowledged so the source only drops its copy
/// once the destination has durably applied it.
struct ResilverPut {
  using Response = ResilverAck;
  int from = -1;  // source staging server index
  Chunk chunk;
  bool logged = false;    // retain in the destination's data log
  bool in_store = true;   // install in the destination's base store
  EndpointId reply_to = -1;
  ReplyPtr<ResilverAck> reply;
};

// ---------------------------------------------------------------------------
// Multi-level checkpoint traffic (component client ↔ ckpt::DrainAgent ↔
// staging servers). The hierarchy itself lives in ckpt::CheckpointHierarchy;
// these verbs announce level transitions: a set cached node-locally, its XOR
// parity distributed to the partner group, and — once the async drain's PFS
// flush lands — the durable promotion that lets the GC watermark advance.
// ---------------------------------------------------------------------------

/// One-way, client → drain agent: a checkpoint set was written to the
/// node-local cache (level 1). Bookkeeping only — the hierarchy state was
/// updated synchronously by the scheme layer, so restart correctness never
/// depends on this message's delivery.
struct CkptStoreLocal {
  AppId app = -1;
  Version version = 0;  // app's timestep at the checkpoint
};

/// One-way, client → drain agent: distribute the set's XOR parity share to
/// the partner group (level 2) and make the set eligible for draining.
/// Carries the parity share's nominal bytes so the transfer is charged at
/// paper scale.
struct CkptXorShard {
  AppId app = -1;
  Version version = 0;
  std::uint64_t nominal_bytes = 0;  // parity share = state bytes / group
};

/// One-way, drain agent → every staging server: the set's PFS flush
/// completed (level 3). The durable promotion: servers treat it exactly
/// like a durable CheckpointEvent for GC purposes — advance the watermark,
/// sweep, prune spilled and peer fragments.
struct CkptDrainAck {
  AppId app = -1;
  Version version = 0;
};

/// Any fabric message (std::variant keeps dispatch exhaustive). New
/// alternatives are appended so existing variant indices stay stable.
using Message =
    std::variant<PutRequest, GetRequest, CheckpointEvent, RecoveryEvent,
                 RollbackRequest, FragmentPut, FragmentPrune, QueueBackup,
                 RecoveryPull, QueryRequest, BatchPut, SpillPut, SpillFetch,
                 SpillPrune, JoinGroup, RetireServer, MembershipUpdate,
                 MembershipQuery, FragmentFetch, ResilverPut, CkptStoreLocal,
                 CkptXorShard, CkptDrainAck>;

// ---------------------------------------------------------------------------
// Codec: the modeled serialized footprint of every message and response.
// Descriptor-only messages cost 64 B (a verbs work request with an inline
// header); requests that name an object cost 128 B; payload-bearing
// messages add their nominal bytes. These constants are load-bearing:
// the Table II golden-trace digests are recorded against them.
// ---------------------------------------------------------------------------

[[nodiscard]] std::uint64_t wire_size(const PutRequest& m);
[[nodiscard]] std::uint64_t wire_size(const GetRequest& m);
[[nodiscard]] std::uint64_t wire_size(const CheckpointEvent& m);
[[nodiscard]] std::uint64_t wire_size(const RecoveryEvent& m);
[[nodiscard]] std::uint64_t wire_size(const RollbackRequest& m);
[[nodiscard]] std::uint64_t wire_size(const FragmentPut& m);
[[nodiscard]] std::uint64_t wire_size(const FragmentPrune& m);
[[nodiscard]] std::uint64_t wire_size(const QueueBackup& m);
[[nodiscard]] std::uint64_t wire_size(const RecoveryPull& m);
[[nodiscard]] std::uint64_t wire_size(const QueryRequest& m);
[[nodiscard]] std::uint64_t wire_size(const BatchPut& m);
[[nodiscard]] std::uint64_t wire_size(const SpillPut& m);
[[nodiscard]] std::uint64_t wire_size(const SpillFetch& m);
[[nodiscard]] std::uint64_t wire_size(const SpillPrune& m);
[[nodiscard]] std::uint64_t wire_size(const JoinGroup& m);
[[nodiscard]] std::uint64_t wire_size(const RetireServer& m);
[[nodiscard]] std::uint64_t wire_size(const MembershipUpdate& m);
[[nodiscard]] std::uint64_t wire_size(const MembershipQuery& m);
[[nodiscard]] std::uint64_t wire_size(const FragmentFetch& m);
[[nodiscard]] std::uint64_t wire_size(const ResilverPut& m);
[[nodiscard]] std::uint64_t wire_size(const CkptStoreLocal& m);
[[nodiscard]] std::uint64_t wire_size(const CkptXorShard& m);
[[nodiscard]] std::uint64_t wire_size(const CkptDrainAck& m);

[[nodiscard]] std::uint64_t wire_size(const PutResponse& m);
[[nodiscard]] std::uint64_t wire_size(const GetResponse& m);
[[nodiscard]] std::uint64_t wire_size(const CheckpointAck& m);
[[nodiscard]] std::uint64_t wire_size(const RecoveryAck& m);
[[nodiscard]] std::uint64_t wire_size(const RollbackAck& m);
[[nodiscard]] std::uint64_t wire_size(const BatchPutResponse& m);
[[nodiscard]] std::uint64_t wire_size(const RecoveryPullResponse& m);
[[nodiscard]] std::uint64_t wire_size(const QueryResponse& m);
[[nodiscard]] std::uint64_t wire_size(const SpillAck& m);
[[nodiscard]] std::uint64_t wire_size(const SpillFetchResponse& m);
[[nodiscard]] std::uint64_t wire_size(const GroupChangeAck& m);
[[nodiscard]] std::uint64_t wire_size(const MembershipInfo& m);
[[nodiscard]] std::uint64_t wire_size(const FragmentFetchResponse& m);
[[nodiscard]] std::uint64_t wire_size(const ResilverAck& m);

/// Serialized size of any message — what the fabric charges a send.
[[nodiscard]] std::uint64_t serialized_size(const Message& m);

/// Stable short name for tracing/metrics, per alternative.
[[nodiscard]] const char* message_name(const PutRequest&);
[[nodiscard]] const char* message_name(const GetRequest&);
[[nodiscard]] const char* message_name(const CheckpointEvent&);
[[nodiscard]] const char* message_name(const RecoveryEvent&);
[[nodiscard]] const char* message_name(const RollbackRequest&);
[[nodiscard]] const char* message_name(const FragmentPut&);
[[nodiscard]] const char* message_name(const FragmentPrune&);
[[nodiscard]] const char* message_name(const QueueBackup&);
[[nodiscard]] const char* message_name(const RecoveryPull&);
[[nodiscard]] const char* message_name(const QueryRequest&);
[[nodiscard]] const char* message_name(const BatchPut&);
[[nodiscard]] const char* message_name(const SpillPut&);
[[nodiscard]] const char* message_name(const SpillFetch&);
[[nodiscard]] const char* message_name(const SpillPrune&);
[[nodiscard]] const char* message_name(const JoinGroup&);
[[nodiscard]] const char* message_name(const RetireServer&);
[[nodiscard]] const char* message_name(const MembershipUpdate&);
[[nodiscard]] const char* message_name(const MembershipQuery&);
[[nodiscard]] const char* message_name(const FragmentFetch&);
[[nodiscard]] const char* message_name(const ResilverPut&);
[[nodiscard]] const char* message_name(const CkptStoreLocal&);
[[nodiscard]] const char* message_name(const CkptXorShard&);
[[nodiscard]] const char* message_name(const CkptDrainAck&);
[[nodiscard]] const char* message_name(const Message& m);

}  // namespace dstage::net
