// Endpoint addressing and one-shot reply slots — the part of the transport
// vocabulary the message layer needs without pulling in the full fabric
// model (message.hpp includes this; fabric.hpp includes message.hpp).
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/task.hpp"

namespace dstage::net {

using EndpointId = int;
using NodeId = int;

/// One-shot completion slot for request/response exchanges. The client
/// co_awaits take(); the server fulfills through the fabric so the response
/// pays transport costs like any other message.
template <class T>
class Reply {
 public:
  explicit Reply(sim::Engine& eng) : done_(eng) {}

  /// Server side: set the value and wake the client (call after paying any
  /// response-transport cost).
  void fulfill(T value) {
    value_ = std::move(value);
    done_.set();
  }

  /// Client side: wait for the response.
  sim::Task<T> take(sim::Ctx ctx) {
    co_await done_.wait(ctx.tok);
    co_return std::move(*value_);
  }

  /// Wait at most `timeout`; nullopt when the server never answered (e.g.
  /// it crashed mid-request) so the caller can retry with a fresh Reply.
  sim::Task<std::optional<T>> take_for(sim::Ctx ctx, sim::Duration timeout) {
    const sim::EventId timer =
        ctx.eng->schedule_call(timeout, [this] { done_.set(); });
    co_await done_.wait(ctx.tok);
    ctx.eng->cancel_event(timer);
    if (value_.has_value()) co_return std::move(*value_);
    co_return std::nullopt;
  }

 private:
  sim::OneShotEvent done_;
  std::optional<T> value_;
};

template <class T>
using ReplyPtr = std::shared_ptr<Reply<T>>;

template <class T>
ReplyPtr<T> make_reply(sim::Engine& eng) {
  return std::make_shared<Reply<T>>(eng);
}

}  // namespace dstage::net
