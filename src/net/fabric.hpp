// Interconnect model. Endpoints (one per virtual process) exchange packets;
// a send serializes on the source node's NIC for bytes/injection_bw (FIFO
// store-and-forward, so injection contention emerges under load) and is
// delivered hop_latency later. Calibrated loosely on a Cray Aries NIC; see
// DESIGN.md §6.
//
// The payload is the typed net::Message vocabulary (message.hpp); the
// fabric computes every packet's modeled serialized size through the codec,
// so callers cannot drift from the cost model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/reply.hpp"
#include "sim/channel.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace dstage::net {

/// Envelope delivered to an endpoint's mailbox. `bytes` is the codec's
/// serialized_size of the payload, recorded at send time.
struct Packet {
  EndpointId src = -1;
  Message payload;
  std::uint64_t bytes = 0;
};

class Fabric;

/// Addressable mailbox owned by one virtual process.
class Endpoint {
 public:
  Endpoint(sim::Engine& eng, EndpointId id, NodeId node)
      : id_(id), node_(node), mailbox_(eng) {}

  [[nodiscard]] EndpointId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] auto recv(sim::CancelToken* tok) { return mailbox_.recv(tok); }
  [[nodiscard]] std::size_t pending() const { return mailbox_.size(); }

 private:
  friend class Fabric;
  EndpointId id_;
  NodeId node_;
  sim::Channel<Packet> mailbox_;
};

class Fabric {
 public:
  struct Params {
    /// Per-node NIC injection bandwidth (Aries-like).
    double injection_bw = 8e9;  // bytes/s
    /// One-way delivery latency.
    sim::Duration latency = sim::microseconds(2);
    /// Fixed per-message send overhead (matching, descriptor handling).
    sim::Duration per_message_overhead = sim::microseconds(1);
  };

  Fabric(sim::Engine& eng, Params params);

  NodeId add_node();
  /// Creates an endpoint homed on `node`.
  EndpointId add_endpoint(NodeId node);

  /// Override one node's injection bandwidth (an application component
  /// spanning N physical nodes is modeled as one endpoint with N times the
  /// per-node NIC bandwidth).
  void set_node_injection_bw(NodeId node, double bytes_per_sec);
  [[nodiscard]] double node_injection_bw(NodeId node) const;

  [[nodiscard]] Endpoint& endpoint(EndpointId id);
  [[nodiscard]] int node_count() const {
    return static_cast<int>(nics_.size());
  }
  [[nodiscard]] const Params& params() const { return params_; }

  // NOTE: send()/transmit() are plain functions forwarding to private
  // coroutines. GCC 12's coroutine codegen double-destroys *prvalue*
  // arguments bound to by-value coroutine parameters (xvalues and lvalues
  // are fine); the shim materializes caller temporaries into named
  // parameters and moves them across the coroutine boundary, so call sites
  // may safely pass temporaries.

  /// Transmit `payload` from `src`'s node to `dst`; the wire footprint is
  /// the codec's serialized_size of the message. Suspends the caller for
  /// the injection (serialization) time, then delivery happens
  /// asynchronously after the wire latency. Intra-node sends skip the NIC
  /// and latency.
  sim::Task<void> send(sim::Ctx ctx, EndpointId src, EndpointId dst,
                       Message payload) {
    return send_impl(ctx, src, dst, std::move(payload));
  }

  /// Pay the sender-side transport cost of `bytes` from `src` to `dst`,
  /// then run `deliver` after the wire latency (response path for
  /// Reply-based RPCs, where no mailbox demultiplexing is wanted).
  sim::Task<void> transmit(sim::Ctx ctx, EndpointId src, EndpointId dst,
                           std::uint64_t bytes,
                           std::function<void()> deliver) {
    return transmit_impl(ctx, src, dst, bytes, std::move(deliver));
  }

  /// Completion-queue notification: fixed overhead + wire latency, no NIC
  /// bandwidth (RDMA completions ride the control path and do not queue
  /// behind bulk DMA).
  sim::Task<void> notify(sim::Ctx ctx, EndpointId src, EndpointId dst,
                         std::function<void()> deliver) {
    return notify_impl(ctx, src, dst, std::move(deliver));
  }

  /// Virtual-time cost of pushing `bytes` through the default NIC.
  [[nodiscard]] sim::Duration injection_time(std::uint64_t bytes) const;
  /// Virtual-time cost of pushing `bytes` through `node`'s NIC.
  [[nodiscard]] sim::Duration injection_time(std::uint64_t bytes,
                                             NodeId node) const;

  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  sim::Task<void> send_impl(sim::Ctx ctx, EndpointId src, EndpointId dst,
                            Message payload);
  sim::Task<void> transmit_impl(sim::Ctx ctx, EndpointId src, EndpointId dst,
                                std::uint64_t bytes,
                                std::function<void()> deliver);
  sim::Task<void> notify_impl(sim::Ctx ctx, EndpointId src, EndpointId dst,
                              std::function<void()> deliver);

  sim::Engine* eng_;
  Params params_;
  std::vector<std::unique_ptr<sim::Resource>> nics_;  // one per node
  std::vector<double> node_bw_;                       // injection bw per node
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace dstage::net
