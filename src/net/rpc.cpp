#include "net/rpc.hpp"

namespace dstage::net {

sim::Task<void> Rpc::send_impl(sim::Ctx ctx, EndpointId dst, Message message) {
  ++stats_.oneways;
  co_await fabric_->send(ctx, self_, dst, std::move(message));
}

sim::Task<void> Rpc::respond_impl(sim::Ctx ctx, EndpointId dst,
                                  std::uint64_t bytes,
                                  std::function<void()> deliver) {
  if (bytes <= kControlPathBytes) {
    // Small acks are RDMA completion notifications: control path only.
    co_await fabric_->notify(ctx, self_, dst, std::move(deliver));
  } else {
    co_await fabric_->transmit(ctx, self_, dst, bytes, std::move(deliver));
  }
}

}  // namespace dstage::net
