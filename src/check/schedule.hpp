// Randomized fault-injection schedules for the consistency campaign. A
// Schedule is a fully explicit description of one oracle run — scheme,
// checkpoint periods, resilience policy, and a hand-listed set of failures
// — so the shrinker can drop or simplify individual failures without
// re-shuffling anything else (which any seed-drawn plan would). Schedules
// serialize to a compact one-line repro string that `tools/campaign
// --repro=...` replays exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/workflow.hpp"

namespace dstage::check {

/// One injected failure of a schedule (mirrors core::ExplicitFailure, plus
/// schedule-level equality for the shrinker's fixpoint test).
struct ScheduleFailure {
  int comp = 0;             // index into the Table-II pair: 0 sim, 1 analytic
  int ts = 1;               // timestep the failure strikes
  double phase = 0.5;       // fraction of the timestep's compute before death;
                            // < 0 means predictor false alarm (no kill)
  bool node_level = false;  // node failure: local checkpoints are lost
  bool predicted = false;   // the failure predictor flagged it in advance

  friend bool operator==(const ScheduleFailure&,
                         const ScheduleFailure&) = default;
};

/// One elastic membership change of a schedule: a standby joins the
/// staging group at `ts` (join) or an active server retires (not join).
/// The shrinker never touches these — a crash aimed into a resilver
/// window stays aimed there through every shrink candidate.
struct ElasticScheduleEvent {
  int ts = 1;
  bool join = true;

  friend bool operator==(const ElasticScheduleEvent&,
                         const ElasticScheduleEvent&) = default;
};

/// Redundancy applied to staged payloads by the schedule.
/// 0 = none, 1 = replication x2, 2 = Reed-Solomon RS(2, 1).
inline constexpr int kResilienceKinds = 3;

struct Schedule {
  int id = 0;  // position in the campaign (label only; not part of config)
  core::Scheme scheme = core::Scheme::kUncoordinated;
  int total_ts = 12;
  int sim_period = 3;        // simulation PFS checkpoint period
  int analytic_period = 4;   // analytic PFS checkpoint period
  int local_ckpt_period = 0; // multi-level local checkpoints (0 disables)
  int resilience = 0;        // see kResilienceKinds
  bool mtbf = false;         // provenance: failure times drawn via MTBF
  /// Per-server staging memory budget in MB (0 = governor disabled). Part
  /// of the configuration, so memory-governed campaigns get their own
  /// reference runs.
  int memory_budget_mb = 0;
  /// Initial active staging servers (0 = the Table-II default; serialized
  /// as `;ss=` only when set). Lets a repro string pin the paper's
  /// grow/shrink scenario exactly (e.g. 3 servers growing to 5).
  int staging_servers = 0;
  /// Multi-level checkpoint hierarchy: XOR partner-group size (0 = off,
  /// the default; serialized as `;ckpt=` only when set, so hierarchy-off
  /// repro strings stay stable). Part of the configuration, so hierarchy
  /// schedules get their own reference runs.
  int ckpt_group = 0;
  /// Co-located tenants sharing the staging group (1 = classic
  /// single-workflow run, the default; serialized as `;tenants=` only when
  /// > 1, so single-tenant repro strings stay stable). Failures always
  /// target tenant 0, making tenants 1..N-1 provable bystanders for the
  /// oracle's isolation invariant. Part of the configuration, so
  /// multi-tenant schedules get their own (multi-tenant, failure-free)
  /// reference runs; the isolation check additionally rebases bystander
  /// reads onto the single-tenant reference.
  int tenants = 1;
  /// Write-log payload codec armed for this schedule (kNone = raw
  /// retention, the default; serialized as `;codec=` only when set, so
  /// codec-off repro strings stay stable). Part of the configuration, so
  /// codec schedules get their own reference runs — and the oracle's
  /// codec-transparency invariant additionally replays every read against
  /// a codec-off twin.
  wlog::codec::Scheme codec = wlog::codec::Scheme::kNone;
  std::vector<ScheduleFailure> failures;
  /// Membership changes driven mid-run (empty = fixed group, the default;
  /// serialized as the `;elastic=` repro field only when non-empty).
  std::vector<ElasticScheduleEvent> elastic;

  /// The Table-II workflow spec this schedule runs: total_ts shortened to
  /// the schedule's horizon and the failures injected verbatim.
  [[nodiscard]] core::WorkflowSpec to_spec() const;

  /// One-line re-runnable serialization (exact round-trip incl. phases).
  [[nodiscard]] std::string repro() const;
  /// Inverse of repro(). Throws std::invalid_argument on malformed input.
  static Schedule parse(const std::string& repro);

  friend bool operator==(const Schedule&, const Schedule&) = default;
};

struct GenerateOptions {
  int count = 100;
  std::uint64_t seed = 1;
  /// Schemes to draw from; empty means all five (Ds/Co/Un/In/Hy).
  std::vector<core::Scheme> schemes;
  int total_ts = 12;
  int max_failures = 3;
  /// Per-server staging memory budget in MB applied to every generated
  /// schedule (0 = governor disabled).
  int memory_budget_mb = 0;
  /// Fraction of schedules that carry an elastic grow/shrink episode (a
  /// join and a later retire). When an episode is drawn and the schedule
  /// has failures, the first failure is re-aimed at the join timestep so
  /// crashes land during the resilver window.
  double elastic_probability = 0.0;
  /// Fraction of schedules that run the multi-level checkpoint hierarchy
  /// (XOR partner-group size drawn from {2, 3, 4}).
  double ckpt_probability = 0.0;
  /// Co-located tenants applied to every generated schedule (1 = classic
  /// single-tenant). Set without consuming the random stream, so
  /// --tenants=N campaigns replay the same failure schedules as their
  /// single-tenant counterparts.
  int tenants = 1;
  /// Write-log payload codec applied to every generated schedule. Set
  /// without consuming the random stream, so --codec campaigns replay the
  /// same failure schedules as their raw-retention counterparts.
  wlog::codec::Scheme codec = wlog::codec::Scheme::kNone;
  /// Cycle schedule i through lz/delta/delta_lz (overrides `codec`;
  /// deterministic by index, no rng draw) — the campaign's --codec=mix.
  bool codec_mix = false;
};

/// Draw `count` independent schedules. Schedule i depends only on
/// (seed, i) — via Rng::fork — so campaigns are reproducible and
/// parallelizable in any order.
std::vector<Schedule> generate_schedules(const GenerateOptions& opts);

/// Short scheme tokens used by repro strings and the CLI: ds|co|un|in|hy.
const char* scheme_token(core::Scheme s);
core::Scheme parse_scheme_token(const std::string& token);

}  // namespace dstage::check
