#include "check/schedule.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/setups.hpp"
#include "util/rng.hpp"

namespace dstage::check {

namespace {

constexpr core::Scheme kAllSchemes[] = {
    core::Scheme::kNone,          core::Scheme::kCoordinated,
    core::Scheme::kUncoordinated, core::Scheme::kIndividual,
    core::Scheme::kHybrid,
};

resilience::ResiliencePolicy resilience_for(int kind) {
  resilience::ResiliencePolicy p;
  switch (kind) {
    case 0:
      p.kind = resilience::Redundancy::kNone;
      break;
    case 1:
      p.kind = resilience::Redundancy::kReplication;
      p.replicas = 2;
      break;
    case 2:
      p.kind = resilience::Redundancy::kErasureCode;
      p.rs_k = 2;
      p.rs_m = 1;
      break;
    default:
      throw std::invalid_argument("schedule resilience kind must be 0..2");
  }
  return p;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

int parse_int(const std::string& s, const char* field) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("repro: bad integer for ") +
                                field + ": '" + s + "'");
  }
}

double parse_double(const std::string& s, const char* field) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) {
    throw std::invalid_argument(std::string("repro: bad number for ") +
                                field + ": '" + s + "'");
  }
  return v;
}

}  // namespace

const char* scheme_token(core::Scheme s) {
  switch (s) {
    case core::Scheme::kNone:
      return "ds";
    case core::Scheme::kCoordinated:
      return "co";
    case core::Scheme::kUncoordinated:
      return "un";
    case core::Scheme::kIndividual:
      return "in";
    case core::Scheme::kHybrid:
      return "hy";
  }
  throw std::invalid_argument("unknown scheme");
}

core::Scheme parse_scheme_token(const std::string& token) {
  for (core::Scheme s : kAllSchemes) {
    if (token == scheme_token(s)) return s;
  }
  throw std::invalid_argument("unknown scheme token '" + token +
                              "' (want ds|co|un|in|hy)");
}

core::WorkflowSpec Schedule::to_spec() const {
  core::WorkflowSpec spec =
      core::table2_setup(scheme, 1.0, sim_period, analytic_period);
  spec.total_ts = total_ts;
  spec.server.policy = resilience_for(resilience);
  for (auto& comp : spec.components) {
    comp.local_ckpt_period = local_ckpt_period;
  }
  if (memory_budget_mb > 0) {
    spec.staging.memory_budget =
        static_cast<std::uint64_t>(memory_budget_mb) << 20;
  }
  if (staging_servers > 0) spec.staging_servers = staging_servers;
  if (ckpt_group > 0) spec.ckpt.xor_group = ckpt_group;
  if (tenants > 1) {
    spec.tenancy.tenants = tenants;
    // Fair-share QoS only means something with the governor armed; equal
    // weights are filled in by expand_tenants().
    spec.tenancy.fair_share = memory_budget_mb > 0;
  }
  spec.wlog.codec = codec;
  spec.failures.seed = static_cast<std::uint64_t>(id) + 1;
  for (const ScheduleFailure& f : failures) {
    spec.failures.explicit_failures.push_back(
        core::ExplicitFailure{f.comp, f.ts, f.phase, f.node_level,
                              f.predicted});
  }
  if (!elastic.empty()) {
    // One standby per join keeps every event sequence admissible; the
    // group manager picks the concrete server (lowest standby / highest
    // active), so events carry no server id.
    int joins = 0;
    for (const ElasticScheduleEvent& e : elastic) joins += e.join ? 1 : 0;
    spec.elastic.standby_servers = joins;
    for (const ElasticScheduleEvent& e : elastic) {
      spec.elastic.events.push_back(core::ElasticEvent{e.ts, e.join, -1});
    }
  }
  return spec;
}

std::string Schedule::repro() const {
  std::string out = "cc1";
  char buf[128];
  std::snprintf(buf, sizeof(buf), ";id=%d;sch=%s;ts=%d;sp=%d;ap=%d;lp=%d"
                ";res=%d;mtbf=%d",
                id, scheme_token(scheme), total_ts, sim_period,
                analytic_period, local_ckpt_period, resilience,
                mtbf ? 1 : 0);
  out += buf;
  // Emitted only when set, so pre-governor repro strings stay stable.
  if (memory_budget_mb > 0) {
    std::snprintf(buf, sizeof(buf), ";mb=%d", memory_budget_mb);
    out += buf;
  }
  if (staging_servers > 0) {
    std::snprintf(buf, sizeof(buf), ";ss=%d", staging_servers);
    out += buf;
  }
  // Emitted only when non-empty, so fixed-group repro strings stay stable.
  if (!elastic.empty()) {
    out += ";elastic=";
    for (std::size_t i = 0; i < elastic.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%c%d", i > 0 ? "," : "",
                    elastic[i].join ? 'j' : 'r', elastic[i].ts);
      out += buf;
    }
  }
  // Emitted only when set, so hierarchy-off repro strings stay stable.
  if (ckpt_group > 0) {
    std::snprintf(buf, sizeof(buf), ";ckpt=%d", ckpt_group);
    out += buf;
  }
  // Emitted only when > 1, so single-tenant repro strings stay stable.
  if (tenants > 1) {
    std::snprintf(buf, sizeof(buf), ";tenants=%d", tenants);
    out += buf;
  }
  // Emitted only when armed, so codec-off repro strings stay stable.
  if (codec != wlog::codec::Scheme::kNone) {
    out += ";codec=";
    out += wlog::codec::scheme_name(codec);
  }
  for (const ScheduleFailure& f : failures) {
    std::string flags;
    if (f.phase < 0) flags += 'a';
    if (f.node_level) flags += 'n';
    if (f.predicted) flags += 'p';
    // %.17g round-trips any double exactly; alarms serialize phase as 0.
    std::snprintf(buf, sizeof(buf), ";f=%d:%d:%.17g:%s", f.comp, f.ts,
                  f.phase < 0 ? 0.0 : f.phase, flags.c_str());
    out += buf;
  }
  return out;
}

Schedule Schedule::parse(const std::string& repro) {
  const auto fields = split(repro, ';');
  if (fields.empty() || fields[0] != "cc1") {
    throw std::invalid_argument("repro: expected 'cc1' version prefix");
  }
  Schedule s;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("repro: malformed field '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    if (key == "id") {
      s.id = parse_int(val, "id");
    } else if (key == "sch") {
      s.scheme = parse_scheme_token(val);
    } else if (key == "ts") {
      s.total_ts = parse_int(val, "ts");
    } else if (key == "sp") {
      s.sim_period = parse_int(val, "sp");
    } else if (key == "ap") {
      s.analytic_period = parse_int(val, "ap");
    } else if (key == "lp") {
      s.local_ckpt_period = parse_int(val, "lp");
    } else if (key == "res") {
      s.resilience = parse_int(val, "res");
    } else if (key == "mtbf") {
      s.mtbf = parse_int(val, "mtbf") != 0;
    } else if (key == "mb") {
      s.memory_budget_mb = parse_int(val, "mb");
    } else if (key == "ss") {
      s.staging_servers = parse_int(val, "ss");
    } else if (key == "ckpt") {
      s.ckpt_group = parse_int(val, "ckpt");
    } else if (key == "tenants") {
      s.tenants = parse_int(val, "tenants");
    } else if (key == "codec") {
      const auto scheme = wlog::codec::parse_scheme(val);
      if (!scheme) {
        throw std::invalid_argument(
            "repro: unknown codec '" + val +
            "' (want none|lz|delta|delta_lz)");
      }
      s.codec = *scheme;
    } else if (key == "elastic") {
      for (const std::string& tok : split(val, ',')) {
        if (tok.size() < 2 || (tok[0] != 'j' && tok[0] != 'r')) {
          throw std::invalid_argument(
              "repro: elastic event wants j<ts> or r<ts>, got '" + tok + "'");
        }
        ElasticScheduleEvent e;
        e.join = tok[0] == 'j';
        e.ts = parse_int(tok.substr(1), "elastic ts");
        s.elastic.push_back(e);
      }
    } else if (key == "f") {
      const auto parts = split(val, ':');
      if (parts.size() != 4) {
        throw std::invalid_argument("repro: failure wants comp:ts:phase:flags"
                                    ", got '" + val + "'");
      }
      ScheduleFailure f;
      f.comp = parse_int(parts[0], "failure comp");
      f.ts = parse_int(parts[1], "failure ts");
      f.phase = parse_double(parts[2], "failure phase");
      for (char c : parts[3]) {
        switch (c) {
          case 'a':
            f.phase = -1.0;  // false alarm: predictor fires, nothing dies
            break;
          case 'n':
            f.node_level = true;
            break;
          case 'p':
            f.predicted = true;
            break;
          default:
            throw std::invalid_argument(
                std::string("repro: unknown failure flag '") + c + "'");
        }
      }
      s.failures.push_back(f);
    } else {
      throw std::invalid_argument("repro: unknown key '" + key + "'");
    }
  }
  return s;
}

std::vector<Schedule> generate_schedules(const GenerateOptions& opts) {
  std::vector<core::Scheme> pool = opts.schemes;
  if (pool.empty()) {
    pool.assign(std::begin(kAllSchemes), std::end(kAllSchemes));
  }
  // Victim weights follow the Table-II core counts: failures hit the
  // 256-core simulation four times as often as the 64-core analytic.
  const std::vector<double> weights = {256.0, 64.0};

  std::vector<Schedule> out;
  out.reserve(static_cast<std::size_t>(std::max(0, opts.count)));
  const Rng root(opts.seed);
  for (int i = 0; i < opts.count; ++i) {
    Rng rng = root.fork(static_cast<std::uint64_t>(i) + 1);
    Schedule s;
    s.id = i;
    s.scheme = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
    s.total_ts = opts.total_ts;
    s.sim_period = rng.uniform_int(2, 4);
    s.analytic_period = rng.uniform_int(2, 5);
    s.local_ckpt_period = rng.next_double() < 0.3 ? 2 : 0;
    s.resilience = rng.uniform_int(0, kResilienceKinds - 1);
    s.mtbf = rng.next_double() < 0.5;
    s.memory_budget_mb = opts.memory_budget_mb;
    s.tenants = opts.tenants;  // no rng draw: schedules replay 1:1
    s.codec = opts.codec;      // no rng draw: schedules replay 1:1
    if (opts.codec_mix) {
      s.codec = static_cast<wlog::codec::Scheme>((i % 3) + 1);
    }

    auto draw_flags = [&](ScheduleFailure& f) {
      f.node_level = rng.next_double() < 0.3;
      f.predicted = rng.next_double() < 0.25;
      // Some predicted entries are false alarms (emergency checkpoint
      // taken, no failure follows) — the predictor's precision cost.
      if (f.predicted && rng.next_double() < 0.2) f.phase = -1.0;
    };
    if (s.mtbf) {
      // Exponential inter-arrivals over the timestep horizon, scaled so
      // the expected count matches the uniform mode's mean.
      const double window = static_cast<double>(s.total_ts);
      const double mean = window / std::max(1, opts.max_failures);
      double t = 0;
      while (static_cast<int>(s.failures.size()) < opts.max_failures) {
        t += rng.exponential(mean);
        if (t >= window) break;
        ScheduleFailure f;
        f.comp = rng.weighted_pick(weights);
        f.ts = std::min(s.total_ts, 1 + static_cast<int>(t));
        f.phase = t - std::floor(t);
        draw_flags(f);
        s.failures.push_back(f);
      }
    } else {
      const int count = rng.uniform_int(0, opts.max_failures);
      for (int j = 0; j < count; ++j) {
        ScheduleFailure f;
        f.comp = rng.weighted_pick(weights);
        f.ts = rng.uniform_int(1, s.total_ts);
        f.phase = rng.next_double();
        draw_flags(f);
        s.failures.push_back(f);
      }
    }
    // An elastic episode: one standby joins mid-run and one server retires
    // later. Drawn last so fixed-group schedules consume the same random
    // stream as before this field existed.
    if (opts.elastic_probability > 0 &&
        rng.next_double() < opts.elastic_probability && s.total_ts >= 3) {
      const int join_ts = rng.uniform_int(2, s.total_ts - 1);
      const int retire_ts = rng.uniform_int(join_ts + 1, s.total_ts);
      s.elastic.push_back(ElasticScheduleEvent{join_ts, true});
      s.elastic.push_back(ElasticScheduleEvent{retire_ts, false});
      // Aim the first failure into the join's resilver window, so the
      // campaign exercises crashes *during* a membership rebuild.
      if (!s.failures.empty()) s.failures.front().ts = join_ts;
    }
    // Multi-level checkpoint hierarchy. Drawn after the elastic episode —
    // i.e. last — so hierarchy-off schedules consume the same random
    // stream as before this field existed.
    if (opts.ckpt_probability > 0 &&
        rng.next_double() < opts.ckpt_probability) {
      s.ckpt_group = rng.uniform_int(2, 4);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace dstage::check
