// Failure forensics: the post-mortem side of the always-on flight
// recorder (obs/flight_recorder). When check_schedule() trips an oracle
// invariant, a campaign --expect-fail run passes unexpectedly, or the
// recorder noted a loud degradation (spare-pool exhaustion, double XOR
// loss), the run's surviving ring events are frozen into a ForensicBundle
// together with the failing schedule, the run digests, and the memoized
// reference run's events. find_divergence() then diffs the two event
// streams by key — not by position, since each ring truncates
// independently — names the first divergent event, and walks backwards
// through drains, spills, resilvers, and epoch changes to reconstruct the
// causal chain that led there.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace dstage::check {

/// Everything needed to diagnose one bad run offline. Serialized as JSON
/// (bundle_to_json / bundle_from_json) so CI can upload it as an artifact
/// and tools/forensics can replay the analysis without the run.
struct ForensicBundle {
  /// Why the bundle was captured: "invariant-violation",
  /// "expect-fail-mismatch", or "degradation".
  std::string trigger;
  /// First violation text or degradation note — the headline.
  std::string detail;
  /// The failing schedule's repro string (tools/campaign --repro=...).
  std::string repro;
  std::string sabotage;  // sabotage name ("none" when clean)
  std::uint64_t trace_digest = 0;
  std::uint64_t reference_digest = 0;
  /// Recorder totals: how much history existed vs how much the rings kept.
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  /// Surviving events of the failing run, global seq order (last K per
  /// component track).
  std::vector<obs::FrDecoded> events;
  /// Same, from the memoized failure-free reference run.
  std::vector<obs::FrDecoded> reference_events;
  /// Verbatim degradation notes (spare exhaustion, double XOR loss).
  std::vector<std::string> degradations;
};

/// Violation summaries ride along in OracleReport; the bundle itself is
/// the recorder's view.
std::string bundle_to_json(const ForensicBundle& b);
/// Parse a bundle written by bundle_to_json. Throws std::runtime_error on
/// malformed input.
ForensicBundle bundle_from_json(const std::string& text);

struct Divergence {
  bool found = false;
  /// Index into ForensicBundle::events of the first divergent event.
  std::size_t index = 0;
  /// Human-readable description of the divergence.
  std::string what;
  /// Events causally upstream of the divergent one (same variable or same
  /// track), oldest first, ending with the divergent event itself.
  std::vector<obs::FrDecoded> causal_chain;
};

/// Diff the failing run's events against the reference and name the first
/// divergent event. Keyed comparison, not positional: a get-serve is
/// matched by (track, var, timestep) and compared by payload checksum; a
/// GC watermark move is divergent when it advances past the reference's
/// final watermark for that variable. Reads flagged by a get-anomaly event
/// on the same (track, var) are not silent divergences and are skipped.
Divergence find_divergence(const ForensicBundle& b);

}  // namespace dstage::check
