// Campaign driver: generate a batch of randomized failure schedules, run
// each through the consistency oracle on a worker pool (reference runs
// memoized across workers), and shrink whatever fails into minimal
// re-runnable reproducers. The library behind tools/campaign and the
// ctest `campaign` label.
#pragma once

#include <vector>

#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"

namespace dstage::check {

struct CampaignOptions {
  GenerateOptions gen;
  /// Worker threads; <= 0 selects hardware concurrency.
  int threads = 0;
  Sabotage sabotage = Sabotage::kNone;
  /// Shrink failing schedules into minimal reproducers.
  bool shrink = true;
  int shrink_budget = 120;
  /// At most this many failing schedules are shrunk (shrinking re-runs the
  /// oracle up to shrink_budget times per failure).
  int max_shrunk = 3;
};

struct CampaignFailure {
  Schedule schedule;     // as generated
  OracleReport report;   // its violations
  Schedule shrunk;       // minimal reproducer (== schedule if not shrunk)
  int shrink_attempts = 0;
};

struct CampaignResult {
  int schedules = 0;
  int passed = 0;
  int total_failures_injected = 0;
  std::vector<CampaignFailure> failures;
  /// Aggregated memory-governor activity across all schedules (zero when
  /// gen.memory_budget_mb == 0). A memory-governed campaign should assert
  /// these are nonzero: a budget loose enough that neither spill nor
  /// backpressure ever fires has verified nothing.
  std::uint64_t spilled_versions = 0;
  std::uint64_t spill_fetches = 0;
  std::uint64_t puts_rejected = 0;
  std::uint64_t backpressure_waits = 0;
  /// Aggregated elastic-membership activity (zero when
  /// gen.elastic_probability == 0). An elastic campaign should assert
  /// resilver_chunks_moved and resilver_drops are nonzero: membership
  /// changes that moved no data have verified nothing.
  std::uint64_t resilver_chunks_moved = 0;
  std::uint64_t resilver_drops = 0;
  std::uint64_t wrong_epoch_rejects = 0;
  std::uint64_t degraded_reads = 0;
  /// Aggregated multi-level checkpoint activity (zero when
  /// gen.ckpt_probability == 0). A hierarchy campaign should assert
  /// ckpt_cache_restarts and ckpt_partner_rebuilds are nonzero: a run
  /// where every restart fell through to the PFS has not verified the
  /// cache or partner levels at all.
  std::uint64_t ckpt_drains_completed = 0;
  std::uint64_t ckpt_cache_restarts = 0;
  std::uint64_t ckpt_partner_rebuilds = 0;
  std::uint64_t ckpt_pfs_restarts = 0;
  /// Aggregated bystander read occurrences the isolation invariant
  /// compared against solo references (zero when gen.tenants <= 1). A
  /// multi-tenant campaign should assert this is nonzero: an isolation
  /// invariant that never inspected a cross-tenant read has verified
  /// nothing.
  std::uint64_t isolation_reads_checked = 0;
  /// Aggregated codec activity (zero when gen.codec == kNone). A --codec
  /// campaign should assert codec_blocks_encoded and codec_reads_checked
  /// are nonzero: a codec run that never encoded a block or never compared
  /// a read against the codec-off reference has verified nothing.
  std::uint64_t codec_reads_checked = 0;
  std::uint64_t codec_blocks_encoded = 0;
  std::uint64_t codec_raw_bytes = 0;
  std::uint64_t codec_stored_bytes = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run the campaign. Deterministic for fixed options (including thread
/// count independence: schedule i's verdict depends only on (seed, i)).
CampaignResult run_campaign(const CampaignOptions& opts);

}  // namespace dstage::check
