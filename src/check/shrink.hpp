// Schedule shrinker: greedy delta-debugging over a failing schedule's
// failure list. Repeatedly re-runs the oracle on candidate simplifications
// — dropping whole failures, clearing node/predictor flags, normalizing
// phases, bisecting strike timesteps toward 1 — and keeps every candidate
// that still fails, yielding a minimal re-runnable reproducer for the
// campaign to print.
#pragma once

#include "check/oracle.hpp"
#include "check/schedule.hpp"

namespace dstage::check {

struct ShrinkResult {
  /// The smallest still-failing schedule found within budget.
  Schedule minimal;
  /// Oracle report of the minimal schedule (the violation that survives).
  OracleReport report;
  /// Oracle runs spent.
  int attempts = 0;
};

/// Minimize `failing` (which must fail check_schedule under `sabotage`).
/// Deterministic; spends at most `budget` oracle runs.
ShrinkResult shrink_schedule(const Schedule& failing, ReferenceCache& cache,
                             Sabotage sabotage, int budget = 120);

}  // namespace dstage::check
