// The crash-consistency oracle. check_schedule() executes one failure
// schedule through the real runtime with probe instrumentation installed
// (staging store/log drops, GC checkpoints and sweeps, consumer read
// checksums, recovery-pipeline milestones) and asserts seven machine-checked
// invariants against a failure-free reference run of the same
// configuration:
//
//   1. Durability — no committed staged version a rolled-back consumer may
//      still need is lost, and every retained chunk is byte-exact for its
//      (var, version, region) content key.
//   2. Read equivalence — a replayed consumer observes data identical to
//      the reference run; non-logged schemes may diverge only with the
//      anomaly (wrong-version / corrupt) flags raised, never silently.
//   3. GC safety — the data log drops nothing above the true retention
//      watermark (computed independently from observed checkpoints, so a
//      sabotaged collector cannot vouch for itself), never rotates logged
//      payloads out, and retains nothing a completed sweep proved
//      unreachable.
//   4. Recovery liveness and prefix consistency — recovery terminates
//      (every start has a matching done, no deadlock), the trace never
//      diverges from the reference before the first injected failure
//      strikes, and every recovered logged component passes through log
//      replay before resuming timesteps.
//   5. Restart-level equivalence (multi-level hierarchy only) — every
//      restart served from the checkpoint cache or a partner rebuild is
//      byte-verified against the checksum taken at write time and is never
//      older than the durable PFS anchor available at the same instant:
//      restart-from-cache ≡ restart-from-PFS, and a partial or in-flight
//      drain is never observable as a valid restart point. (Invariant 2's
//      read equivalence against the failure-free reference then proves the
//      post-restart execution is indistinguishable.)
//   6. Tenant isolation (multi-tenant schedules only) — failures target
//      tenant 0, so every other tenant is a bystander: its reads, rebased
//      onto a single-tenant reference run of the same workflow by stripping
//      the "@t<N>" clone suffix, must be bit-for-bit identical to running
//      solo. Tenant 0's crashes, rollbacks, GC sweeps and spills must be
//      invisible to its co-tenants.
//   7. Codec transparency (codec-armed schedules only) — every consumer
//      read of the codec-armed reference run must be bit-for-bit identical
//      (checksum, byte count, anomaly flags) to the codec-off reference of
//      the same configuration: compressing and delta-encoding the write
//      log must never be observable through any read path. Combined with
//      invariant 2 (the failure run replays identically to its codec-armed
//      reference), this pins decoded reads to the uncompressed truth, and
//      invariant 1's holdings sweep byte-verifies every decoded retained
//      chunk against its content key.
//
// Reference runs are memoized per failure-free configuration so a campaign
// pays for each distinct (scheme, periods, resilience) combination once.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "check/schedule.hpp"
#include "core/trace.hpp"
#include "obs/flight_recorder.hpp"

namespace dstage::check {

struct ForensicBundle;  // check/forensics.hpp

/// Deliberate protocol corruptions the campaign injects to prove the
/// oracle catches real bugs (and that the shrinker minimizes them).
enum class Sabotage {
  kNone,
  /// Recovered components skip the log-replay stage (drops the paper's
  /// re-attach protocol step).
  kSkipReplay,
  /// The garbage collector believes a watermark two versions above the
  /// truth and reclaims logged data consumers may still re-read.
  kGcOvercollect,
};

const char* sabotage_name(Sabotage s);
Sabotage parse_sabotage(const std::string& name);

struct Violation {
  int invariant = 0;  // 1..7, numbering above
  std::string detail;
};

struct OracleReport {
  std::vector<Violation> violations;
  int failures_injected = 0;
  int alarms_fired = 0;       // false-alarm entries that perturbed the run
  std::uint64_t trace_digest = 0;
  std::uint64_t reference_digest = 0;
  // Memory-governor activity observed during the run (all zero when the
  // schedule carries no memory budget). Campaigns aggregate these to
  // assert that a tight budget really exercised spill and backpressure.
  std::uint64_t spilled_versions = 0;
  std::uint64_t spill_fetches = 0;
  std::uint64_t puts_rejected = 0;
  std::uint64_t backpressure_waits = 0;
  // Elastic-membership activity (all zero for fixed-group schedules).
  // resilver_drops counts kResilver hand-off releases the oracle audited:
  // each one was only legal because another server already held the data.
  std::uint64_t membership_epoch = 0;
  std::uint64_t resilver_chunks_moved = 0;
  std::uint64_t resilver_bytes_moved = 0;
  std::uint64_t wrong_epoch_rejects = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t resilver_drops = 0;
  // Multi-level checkpoint activity (all zero for hierarchy-off
  // schedules). Campaigns aggregate these to assert the hierarchy really
  // exercised cache restarts and partner rebuilds.
  std::uint64_t ckpt_drains_completed = 0;
  std::uint64_t ckpt_cache_restarts = 0;
  std::uint64_t ckpt_partner_rebuilds = 0;
  std::uint64_t ckpt_pfs_restarts = 0;
  // Tenant-isolation activity (zero for single-tenant schedules): bystander
  // read occurrences rebased onto the solo reference and compared exact.
  // Campaigns aggregate this to assert --require-isolation really checked
  // cross-tenant reads rather than vacuously passing.
  std::uint64_t isolation_reads_checked = 0;
  // Codec activity (zero for codec-off schedules): reads the transparency
  // invariant compared against the codec-off reference, and blocks the
  // run's data logs actually encoded. Campaigns aggregate these to assert
  // a --codec campaign really exercised the codec rather than vacuously
  // passing.
  std::uint64_t codec_reads_checked = 0;
  std::uint64_t codec_blocks_encoded = 0;
  std::uint64_t codec_raw_bytes = 0;
  std::uint64_t codec_stored_bytes = 0;

  /// Forensic post-mortem captured from the flight recorder. Non-null when
  /// the run violated an invariant, the recorder noted a loud degradation,
  /// or the caller forced capture (campaign --expect-fail mismatches).
  std::shared_ptr<const ForensicBundle> bundle;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Human-readable one-per-line violation list (empty string when ok).
  [[nodiscard]] std::string summary() const;
};

/// Memoized failure-free reference runs, shared across campaign workers.
/// Thread-safe; each distinct configuration is computed exactly once.
class ReferenceCache {
 public:
  /// What invariant 2 compares against: one observation per completed get.
  struct ReadObs {
    std::uint64_t checksum = 0;  // order-independent piece checksum
    std::uint64_t bytes = 0;     // nominal bytes returned
    int anomalies = 0;           // wrong-version + corrupt counts
  };

  struct Entry {
    std::map<std::string, ReadObs> reads;  // "comp|var|ts" -> observation
    std::vector<core::TraceEvent> trace;
    std::uint64_t digest = 0;
    /// The reference run's flight-recorder dump: what the forensic diff
    /// compares a failing run's events against.
    std::vector<obs::FrDecoded> recorder_events;
  };

  /// The failure-free reference for `s`'s configuration (failures and id
  /// stripped). Blocks on first use per configuration; cheap thereafter.
  std::shared_ptr<const Entry> reference_for(const Schedule& s);

 private:
  struct Slot {
    std::once_flag once;
    std::shared_ptr<const Entry> entry;
  };
  std::mutex mu_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
};

/// Key of one consumer get occurrence: "component|var|timestep".
std::string read_key(const std::string& comp, const std::string& var, int ts);

/// Run `s` under the oracle and return every invariant violation found.
/// `capture_bundle` forces a forensic bundle even when the run is clean —
/// how a campaign documents an --expect-fail schedule that unexpectedly
/// passed.
OracleReport check_schedule(const Schedule& s, ReferenceCache& cache,
                            Sabotage sabotage = Sabotage::kNone,
                            bool capture_bundle = false);

}  // namespace dstage::check
