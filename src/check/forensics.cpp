#include "check/forensics.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "check/schedule.hpp"
#include "core/scheme/policy.hpp"
#include "util/json.hpp"
#include "util/json_reader.hpp"

namespace dstage::check {

namespace {

Json event_to_json(const obs::FrDecoded& e) {
  Json out = Json::object();
  out.set("seq", e.seq);
  out.set("at_ns", e.at_ns);
  out.set("kind", e.kind);
  out.set("track", e.track);
  out.set("detail", e.detail);
  out.set("a", e.a);
  out.set("b", e.b);
  return out;
}

obs::FrDecoded event_from_json(const JsonValue& v) {
  obs::FrDecoded e;
  if (const JsonValue* m = v.member("seq")) e.seq = m->as_u64();
  if (const JsonValue* m = v.member("at_ns")) e.at_ns = m->as_i64();
  if (const JsonValue* m = v.member("kind")) e.kind = m->string;
  if (const JsonValue* m = v.member("track")) e.track = m->string;
  if (const JsonValue* m = v.member("detail")) e.detail = m->string;
  if (const JsonValue* m = v.member("a")) e.a = m->as_i64();
  if (const JsonValue* m = v.member("b")) e.b = m->as_i64();
  return e;
}

std::vector<obs::FrDecoded> events_from_json(const JsonValue* arr) {
  std::vector<obs::FrDecoded> out;
  if (arr == nullptr || !arr->is_array()) return out;
  out.reserve(arr->array.size());
  for (const JsonValue& v : arr->array) out.push_back(event_from_json(v));
  return out;
}

/// Key identifying one get occurrence across runs: the ring truncates
/// independently per run, so positional alignment is meaningless.
std::string read_key(const obs::FrDecoded& e) {
  return e.track + "|" + e.detail + "|" + std::to_string(e.a);
}

std::string var_key(const obs::FrDecoded& e) {
  return e.track + "|" + e.detail;
}

/// Kinds worth following when reconstructing the causal chain backwards:
/// data movement, durability promotions, membership changes, GC moves,
/// restarts — everything that can change what a later read observes.
bool causal_kind(const std::string& kind) {
  static const char* const kCausal[] = {
      "put-admit",     "put-reject",  "put-bounce",  "get-serve",
      "get-anomaly",   "get-bounce",  "spill-out",   "spill-fetch",
      "drain-ack",     "ckpt-store",  "ckpt-encode", "ckpt-drain",
      "resilver-out",  "resilver-in", "epoch-change", "gc-watermark",
      "gc-sweep",      "log-truncate", "restart-level", "replay-done",
      "failure",       "degradation"};
  for (const char* k : kCausal) {
    if (kind == k) return true;
  }
  return false;
}

}  // namespace

std::string bundle_to_json(const ForensicBundle& b) {
  Json out = Json::object();
  out.set("trigger", b.trigger);
  out.set("detail", b.detail);
  out.set("repro", b.repro);
  out.set("sabotage", b.sabotage);
  out.set("trace_digest", b.trace_digest);
  out.set("reference_digest", b.reference_digest);
  out.set("events_recorded", b.events_recorded);
  out.set("events_dropped", b.events_dropped);
  Json degradations = Json::array();
  for (const std::string& d : b.degradations) degradations.push(d);
  out.set("degradations", std::move(degradations));
  Json events = Json::array();
  for (const obs::FrDecoded& e : b.events) events.push(event_to_json(e));
  out.set("events", std::move(events));
  Json ref = Json::array();
  for (const obs::FrDecoded& e : b.reference_events)
    ref.push(event_to_json(e));
  out.set("reference_events", std::move(ref));
  return out.str();
}

ForensicBundle bundle_from_json(const std::string& text) {
  JsonParse parsed = parse_json(text);
  if (!parsed.ok || !parsed.value.is_object()) {
    throw std::runtime_error(
        "malformed forensic bundle: " +
        (parsed.errors.empty() ? std::string("not a JSON object")
                               : parsed.errors.front()));
  }
  const JsonValue& v = parsed.value;
  ForensicBundle b;
  if (const JsonValue* m = v.member("trigger")) b.trigger = m->string;
  if (const JsonValue* m = v.member("detail")) b.detail = m->string;
  if (const JsonValue* m = v.member("repro")) b.repro = m->string;
  if (const JsonValue* m = v.member("sabotage")) b.sabotage = m->string;
  if (const JsonValue* m = v.member("trace_digest"))
    b.trace_digest = m->as_u64();
  if (const JsonValue* m = v.member("reference_digest"))
    b.reference_digest = m->as_u64();
  if (const JsonValue* m = v.member("events_recorded"))
    b.events_recorded = m->as_u64();
  if (const JsonValue* m = v.member("events_dropped"))
    b.events_dropped = m->as_u64();
  if (const JsonValue* m = v.member("degradations"); m && m->is_array()) {
    for (const JsonValue& d : m->array) b.degradations.push_back(d.string);
  }
  b.events = events_from_json(v.member("events"));
  b.reference_events = events_from_json(v.member("reference_events"));
  return b;
}

Divergence find_divergence(const ForensicBundle& b) {
  Divergence out;

  // Reference views: final get-serve checksum per (track, var, ts) and
  // final GC watermark per (track, var).
  std::map<std::string, std::int64_t> ref_reads;
  std::map<std::string, std::int64_t> ref_watermark;
  for (const obs::FrDecoded& e : b.reference_events) {
    if (e.kind == "get-serve") {
      ref_reads[read_key(e)] = e.b;
    } else if (e.kind == "gc-watermark") {
      std::int64_t& mark = ref_watermark[var_key(e)];
      mark = std::max(mark, e.a);
    }
  }
  // Which components the schedule's REAL scheme policy obliges to replay
  // their log after a restart. Reconstructed from the repro string, not
  // the run: a sabotaged policy lies to the runtime (that is the point of
  // --break=skip-replay), so the run's own events cannot testify to what
  // should have happened — only the uncorrupted policy can.
  std::map<std::string, bool> replay_expected;
  if (!b.repro.empty()) {
    try {
      const Schedule s = Schedule::parse(b.repro);
      const core::WorkflowSpec spec = s.to_spec();
      const auto policy = core::make_scheme_policy(s.scheme);
      for (const core::ComponentSpec& c : spec.components) {
        replay_expected[c.name] = policy->replay_on_restart(c);
      }
    } catch (const std::exception&) {
      // Hand-built bundle without a parseable repro: skip the rule.
    }
  }
  // replay-done seqs per component, to test "did a replay follow?".
  std::map<std::string, std::vector<std::uint64_t>> replays;
  for (const obs::FrDecoded& e : b.events) {
    if (e.kind == "replay-done") replays[e.detail].push_back(e.seq);
  }

  // Reads the failing run itself flagged: an anomaly event on the same
  // (track, var) means the divergence was detected, not silent — the
  // anomaly IS the finding then.
  std::map<std::string, std::uint64_t> flagged;  // var_key -> first seq
  for (const obs::FrDecoded& e : b.events) {
    if (e.kind == "get-anomaly" && flagged.find(var_key(e)) == flagged.end())
      flagged[var_key(e)] = e.seq;
  }

  // Scan the failing run oldest-first; the first keyed mismatch wins.
  std::size_t best = b.events.size();
  std::string what;
  for (std::size_t i = 0; i < b.events.size(); ++i) {
    const obs::FrDecoded& e = b.events[i];
    if (e.kind == "get-serve") {
      const auto it = ref_reads.find(read_key(e));
      if (it == ref_reads.end() || it->second == e.b) continue;
      if (flagged.find(var_key(e)) != flagged.end()) continue;
      best = i;
      what = "get-serve " + e.track + " read " + e.detail + " at ts " +
             std::to_string(e.a) + " with payload checksum " +
             std::to_string(static_cast<std::uint64_t>(e.b)) +
             ", reference served " +
             std::to_string(static_cast<std::uint64_t>(it->second)) +
             " — replayed read diverged silently";
      break;
    }
    if (e.kind == "gc-watermark") {
      const auto it = ref_watermark.find(var_key(e));
      const std::int64_t ref_max =
          it == ref_watermark.end() ? 0 : it->second;
      if (e.a <= ref_max) continue;
      best = i;
      what = "gc-watermark on " + e.track + " advanced " + e.detail +
             " to v" + std::to_string(e.a) +
             " past the reference's final watermark v" +
             std::to_string(ref_max) + " — over-collection";
      break;
    }
    if (e.kind == "restart-level") {
      const auto it = replay_expected.find(e.detail);
      if (it == replay_expected.end() || !it->second) continue;
      bool followed = false;
      for (const std::uint64_t seq : replays[e.detail]) {
        if (seq > e.seq) {
          followed = true;
          break;
        }
      }
      if (followed) continue;
      best = i;
      what = "restart-level: " + e.detail + " restarted at ts " +
             std::to_string(e.b) + " (level " + std::to_string(e.a) +
             ") and no replay-done followed — the scheme's log-replay "
             "re-attach step was skipped";
      break;
    }
    if (e.kind == "get-anomaly") {
      best = i;
      what = "get-anomaly on " + e.track + ": " + e.detail +
             " requested v" + std::to_string(e.a) + " but v" +
             std::to_string(e.b) +
             " was substituted (wrong-version serve, flagged)";
      break;
    }
    if (e.kind == "degradation") {
      best = i;
      what = "degradation on " + e.track + ": " + e.detail;
      break;
    }
  }
  if (best == b.events.size()) return out;  // nothing divergent survived

  out.found = true;
  out.index = best;
  out.what = std::move(what);

  // Walk backwards from the divergent event collecting its causal
  // neighborhood: events touching the same variable, plus events on the
  // same track (the component or server where it surfaced).
  constexpr std::size_t kChainCap = 16;
  const obs::FrDecoded& pivot = b.events[best];
  std::vector<obs::FrDecoded> chain;
  chain.push_back(pivot);
  for (std::size_t i = best; i-- > 0 && chain.size() < kChainCap;) {
    const obs::FrDecoded& e = b.events[i];
    if (!causal_kind(e.kind)) continue;
    const bool same_var = !pivot.detail.empty() && e.detail == pivot.detail;
    const bool same_track = e.track == pivot.track;
    // Global control-plane moves (epoch bumps, failures, restarts) shape
    // everything downstream regardless of variable.
    const bool global = e.kind == "epoch-change" || e.kind == "failure" ||
                        e.kind == "restart-level" || e.kind == "replay-done";
    if (same_var || same_track || global) chain.push_back(e);
  }
  std::reverse(chain.begin(), chain.end());
  out.causal_chain = std::move(chain);
  return out;
}

}  // namespace dstage::check
