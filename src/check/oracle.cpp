#include "check/oracle.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

#include "check/forensics.hpp"
#include "ckpt/hierarchy.hpp"
#include "core/executor.hpp"
#include "core/multi_tenant.hpp"
#include "core/scheme/policy.hpp"
#include "staging/server.hpp"
#include "staging/tenant.hpp"
#include "util/geometry.hpp"

namespace dstage::check {

namespace {

using staging::AppId;
using staging::Version;

/// Reports are bounded: a systemic bug (e.g. a sabotaged GC) would
/// otherwise produce one violation per dropped version.
constexpr std::size_t kMaxViolations = 32;

void add_violation(std::vector<Violation>& out, int invariant,
                   std::string detail) {
  if (out.size() < kMaxViolations) {
    out.push_back(Violation{invariant, std::move(detail)});
  }
}

/// Sabotage decorator: forwards every protocol decision to the real scheme
/// policy except the post-recovery log replay, which it silently skips —
/// exactly the bug class the oracle's invariants 2 and 4 exist to catch.
class SkipReplayPolicy final : public core::SchemePolicy {
 public:
  explicit SkipReplayPolicy(std::unique_ptr<core::SchemePolicy> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] core::Scheme scheme() const override {
    return inner_->scheme();
  }
  [[nodiscard]] bool uses_logging() const override {
    return inner_->uses_logging();
  }
  [[nodiscard]] bool replay_on_restart(
      const core::ComponentSpec&) const override {
    return false;
  }
  [[nodiscard]] bool proactive_eligible(
      const core::ComponentSpec& c) const override {
    return inner_->proactive_eligible(c);
  }
  [[nodiscard]] sim::Duration barrier_cost(
      const core::RuntimeServices& rt) const override {
    return inner_->barrier_cost(rt);
  }
  sim::Task<void> on_timestep_end(core::RuntimeServices& rt, core::Comp& comp,
                                  int ts, sim::Ctx ctx) override {
    return inner_->on_timestep_end(rt, comp, ts, ctx);
  }
  sim::Task<void> checkpoint(core::RuntimeServices& rt, core::Comp& comp,
                             int ts, sim::Ctx ctx) override {
    return inner_->checkpoint(rt, comp, ts, ctx);
  }
  void recover(core::RuntimeServices& rt, core::Comp& comp) override {
    inner_->recover(rt, comp);
  }

 private:
  std::unique_ptr<core::SchemePolicy> inner_;
};

/// var -> apps that may roll back and re-read it (the GC's retention
/// audience), derived from the spec under the *real* scheme semantics so a
/// sabotaged run is still judged against the correct protocol.
using ConsumerMap = std::map<std::string, std::vector<AppId>>;

ConsumerMap rollback_consumers(const core::WorkflowSpec& spec,
                               const core::SchemePolicy& policy) {
  ConsumerMap out;
  for (const auto& writer : spec.components) {
    for (const auto& write : writer.writes) {
      // Keys are tenant-namespaced exactly as the runtime registers them,
      // and only same-tenant readers are in the retention audience —
      // tenant A's rollback consumers never pin tenant B's log.
      auto& apps = out[staging::tenant_key(writer.tenant, write.var)];
      for (std::size_t r = 0; r < spec.components.size(); ++r) {
        const auto& reader = spec.components[r];
        if (reader.tenant != writer.tenant) continue;
        if (!policy.component_logged(reader)) continue;
        for (const auto& read : reader.reads) {
          if (read.var == write.var) {
            apps.push_back(static_cast<AppId>(r));
            break;
          }
        }
      }
    }
  }
  return out;
}

/// Everything the probes accumulate during one instrumented run.
struct Observation {
  std::map<std::string, std::vector<ReferenceCache::ReadObs>> reads;
  /// Per staging server: app -> highest checkpoint version it announced.
  std::vector<std::map<AppId, Version>> server_ckpts;
  int recovery_starts = 0;
  int recovery_dones = 0;
};

/// The retention watermark server `si` is *entitled* to believe, rebuilt
/// from the checkpoints the oracle watched arrive — mirroring
/// gc::GarbageCollector::watermark() exactly, minus any sabotage bias.
Version true_watermark(const Observation& obs, std::size_t si,
                       const std::string& var, const ConsumerMap& consumers) {
  auto it = consumers.find(var);
  Version mark = std::numeric_limits<Version>::max();
  if (it == consumers.end()) return mark;
  for (AppId app : it->second) {
    const auto& ckpts = obs.server_ckpts[si];
    auto f = ckpts.find(app);
    mark = std::min(mark, f == ckpts.end() ? Version{0} : f->second);
  }
  return mark;
}

bool events_equal(const core::TraceEvent& a, const core::TraceEvent& b) {
  return a.at == b.at && a.kind == b.kind && a.timestep == b.timestep &&
         a.value == b.value && a.component == b.component;
}

std::string describe(const core::TraceEvent& e) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s(%s, ts=%d) at %.6fs",
                core::trace_kind_name(e.kind), e.component.c_str(),
                e.timestep, e.at.seconds());
  return buf;
}

std::shared_ptr<const ReferenceCache::Entry> run_reference(
    const Schedule& base) {
  auto entry = std::make_shared<ReferenceCache::Entry>();
  core::WorkflowRunner runner(base.to_spec());
  runner.services().read_probe =
      [&entry](const core::Comp& c, int ts, const std::string& var,
               std::uint64_t checksum, std::uint64_t bytes, int wrong_version,
               int corrupt) {
        entry->reads[read_key(c.spec.name, var, ts)] =
            ReferenceCache::ReadObs{checksum, bytes, wrong_version + corrupt};
      };
  runner.run();
  entry->trace = runner.trace().events();
  entry->digest = runner.trace().digest();
  if (const obs::FlightRecorder* rec = runner.runtime().recorder()) {
    entry->recorder_events = rec->dump();
  }
  return entry;
}

}  // namespace

const char* sabotage_name(Sabotage s) {
  switch (s) {
    case Sabotage::kNone:
      return "none";
    case Sabotage::kSkipReplay:
      return "skip-replay";
    case Sabotage::kGcOvercollect:
      return "gc-overcollect";
  }
  throw std::invalid_argument("unknown sabotage");
}

Sabotage parse_sabotage(const std::string& name) {
  for (Sabotage s :
       {Sabotage::kNone, Sabotage::kSkipReplay, Sabotage::kGcOvercollect}) {
    if (name == sabotage_name(s)) return s;
  }
  throw std::invalid_argument("unknown sabotage '" + name +
                              "' (want none|skip-replay|gc-overcollect)");
}

std::string read_key(const std::string& comp, const std::string& var,
                     int ts) {
  return comp + "|" + var + "|" + std::to_string(ts);
}

std::string OracleReport::summary() const {
  std::string out;
  for (const Violation& v : violations) {
    out += "invariant " + std::to_string(v.invariant) + ": " + v.detail +
           "\n";
  }
  return out;
}

std::shared_ptr<const ReferenceCache::Entry> ReferenceCache::reference_for(
    const Schedule& s) {
  Schedule base = s;
  base.id = 0;
  base.mtbf = false;
  base.failures.clear();
  const std::string key = base.repro();

  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = slots_[key];
    if (!entry) entry = std::make_shared<Slot>();
    slot = entry;
  }
  std::call_once(slot->once, [&] { slot->entry = run_reference(base); });
  return slot->entry;
}

OracleReport check_schedule(const Schedule& s, ReferenceCache& cache,
                            Sabotage sabotage, bool capture_bundle) {
  OracleReport report;
  const auto ref = cache.reference_for(s);
  report.reference_digest = ref->digest;

  const auto real_policy = core::make_scheme_policy(s.scheme);
  core::WorkflowSpec spec = s.to_spec();
  // Expand tenant clones up front (idempotent — the runtime builder's own
  // expansion then no-ops) so the consumer map sees the same namespaced
  // variables and app indices the servers will.
  core::expand_tenants(spec);
  const ConsumerMap consumers = rollback_consumers(spec, *real_policy);

  std::unique_ptr<core::SchemePolicy> run_policy;
  if (sabotage == Sabotage::kSkipReplay) {
    run_policy =
        std::make_unique<SkipReplayPolicy>(core::make_scheme_policy(s.scheme));
  }
  core::WorkflowRunner runner(std::move(spec), std::move(run_policy));
  const core::WorkflowSpec& rspec = runner.runtime().spec();

  Observation obs;
  auto& servers = runner.runtime().servers();
  obs.server_ckpts.resize(servers.size());

  // Elastic invariant: a resilver hand-off may release a local copy only
  // when some *other* server already holds (var, version) — durability
  // moves across the membership change, it is never destroyed, and the
  // retained copy count never double-counts a version that left.
  const auto audit_resilver_drop = [&servers, &report](
                                       std::size_t si, const std::string& var,
                                       Version version, const char* what) {
    ++report.resilver_drops;
    for (std::size_t sj = 0; sj < servers.size(); ++sj) {
      if (sj == si) continue;
      if (!servers[sj]->store().chunks_of(var, version).empty() ||
          servers[sj]->data_log().has(var, version)) {
        return;
      }
    }
    add_violation(report.violations, 1,
                  std::string("resilver released ") + var + " v" +
                      std::to_string(version) + " from the " + what +
                      " of server " + std::to_string(si) +
                      " with no other server holding it");
  };

  for (std::size_t si = 0; si < servers.size(); ++si) {
    staging::StagingServer* srv = servers[si].get();
    if (sabotage == Sabotage::kGcOvercollect) srv->set_gc_watermark_bias(2);

    staging::StagingServer::ProbeSet probes;
    // Base-store drops are otherwise free-form (window rotation), but a
    // resilver release must pass the same hand-off audit as the log's.
    probes.store_drop = [&audit_resilver_drop, si](const std::string& var,
                                                   Version version,
                                                   staging::DropReason why) {
      if (why == staging::DropReason::kResilver) {
        audit_resilver_drop(si, var, version, "store");
      }
    };
    probes.gc_checkpoint = [&obs, si](AppId app, Version version) {
      auto& mark = obs.server_ckpts[si][app];
      mark = std::max(mark, version);
    };
    // Invariant 3, at reclaim time: a log drop is legal only at or below
    // the watermark this server could honestly have derived from the
    // checkpoints it has seen.
    probes.log_drop = [&obs, &consumers, &report, &runner,
                       &audit_resilver_drop, si](
                          const std::string& var, Version version,
                          staging::DropReason why) {
      if (why == staging::DropReason::kRollback) return;
      if (why == staging::DropReason::kResilver) {
        audit_resilver_drop(si, var, version, "data log");
        return;
      }
      if (why == staging::DropReason::kSpill) {
        // A spill eviction is legal at any version — but only if the PFS
        // gateway really holds the evicted version at the instant the log
        // lets go of it (the server must ack-then-drop, never drop-then-
        // spill).
        const staging::SpillGateway* gw = runner.runtime().spill_gateway();
        bool covered = false;
        if (gw != nullptr) {
          for (Version v : gw->versions_of(var)) covered |= v == version;
        }
        if (!covered) {
          add_violation(report.violations, 1,
                        "server " + std::to_string(si) + " spilled " + var +
                            " v" + std::to_string(version) +
                            " out of its log with no PFS copy at the "
                            "gateway");
        }
        return;
      }
      if (why == staging::DropReason::kRotation) {
        add_violation(report.violations, 3,
                      "data log rotated out " + var + " v" +
                          std::to_string(version) + " on server " +
                          std::to_string(si) +
                          " (log retention must be unbounded)");
        return;
      }
      const Version mark = true_watermark(obs, si, var, consumers);
      if (version > mark) {
        add_violation(
            report.violations, 3,
            "GC reclaimed " + var + " v" + std::to_string(version) +
                " on server " + std::to_string(si) +
                " above the true watermark v" + std::to_string(mark));
      }
    };
    // Invariant 3, after each sweep: nothing the sweep proved unreachable
    // may remain retained.
    probes.gc_sweep = [&report, si, srv](const std::string& var,
                                         Version /*watermark*/, Version upto,
                                         std::size_t /*dropped*/) {
      for (Version v : srv->data_log().versions_of(var)) {
        if (v <= upto) {
          add_violation(report.violations, 3,
                        "sweep left unreachable " + var + " v" +
                            std::to_string(v) + " retained on server " +
                            std::to_string(si) + " (swept up to v" +
                            std::to_string(upto) + ")");
        }
      }
    };
    srv->install_probes(std::move(probes));
  }
  runner.services().read_probe =
      [&obs](const core::Comp& c, int ts, const std::string& var,
             std::uint64_t checksum, std::uint64_t bytes, int wrong_version,
             int corrupt) {
        obs.reads[read_key(c.spec.name, var, ts)].push_back(
            ReferenceCache::ReadObs{checksum, bytes,
                                    wrong_version + corrupt});
      };
  runner.services().recovery_probe = [&obs](core::TraceKind stage,
                                            const core::Comp*, int) {
    if (stage == core::TraceKind::kRecoveryStart) ++obs.recovery_starts;
    if (stage == core::TraceKind::kRecoveryDone) ++obs.recovery_dones;
  };

  bool deadlocked = false;
  try {
    const core::RunMetrics metrics = runner.run();
    report.spilled_versions = metrics.staging.spilled_versions;
    report.spill_fetches = metrics.staging.spill_fetches;
    report.puts_rejected = metrics.staging.puts_rejected;
    report.backpressure_waits = metrics.rpc_backpressure_waits;
    report.membership_epoch = metrics.staging.membership_epoch;
    report.resilver_chunks_moved = metrics.staging.resilver_chunks_moved;
    report.resilver_bytes_moved = metrics.staging.resilver_bytes_moved;
    report.wrong_epoch_rejects = metrics.staging.wrong_epoch_rejects;
    report.degraded_reads = metrics.staging.degraded_reads;
    report.ckpt_drains_completed = metrics.ckpt.drains_completed;
    report.ckpt_cache_restarts = metrics.ckpt.cache_restarts;
    report.ckpt_partner_rebuilds = metrics.ckpt.partner_rebuilds;
    report.ckpt_pfs_restarts = metrics.ckpt.pfs_restarts;
    report.codec_blocks_encoded = metrics.staging.codec_blocks;
    report.codec_raw_bytes = metrics.staging.codec_raw_bytes;
    report.codec_stored_bytes = metrics.staging.codec_stored_bytes;
  } catch (const std::runtime_error& e) {
    deadlocked = true;
    add_violation(report.violations, 4,
                  std::string("recovery did not terminate: ") + e.what());
  }
  report.trace_digest = runner.trace().digest();

  // Forensic capture: freeze the flight recorder's surviving events into a
  // bundle whenever the run went loudly wrong — any invariant violation,
  // any recorded degradation — or when the caller forced it (--expect-fail
  // mismatch documentation). Called at every return point below.
  const auto attach_bundle = [&report, &runner, &ref, &s, sabotage,
                              capture_bundle] {
    const obs::FlightRecorder* rec = runner.runtime().recorder();
    if (rec == nullptr) return;
    const bool degraded = !rec->degradations().empty();
    if (report.violations.empty() && !degraded && !capture_bundle) return;
    auto bundle = std::make_shared<ForensicBundle>();
    bundle->trigger = !report.violations.empty() ? "invariant-violation"
                      : degraded                 ? "degradation"
                                                 : "expect-fail-mismatch";
    bundle->detail =
        !report.violations.empty() ? report.violations.front().detail
        : degraded                 ? rec->degradations().front()
                   : "schedule expected to fail but passed clean";
    bundle->repro = s.repro();
    bundle->sabotage = sabotage_name(sabotage);
    bundle->trace_digest = report.trace_digest;
    bundle->reference_digest = report.reference_digest;
    bundle->events_recorded = rec->events_recorded();
    bundle->events_dropped = rec->events_dropped();
    bundle->events = rec->dump();
    bundle->reference_events = ref->recorder_events;
    bundle->degradations = rec->degradations();
    report.bundle = std::move(bundle);
  };

  bool any_fired = false;
  for (const core::PlannedFailure& f : runner.runtime().plan()) {
    if (!f.fired) continue;
    any_fired = true;
    if (f.phase < 0) {
      ++report.alarms_fired;
    } else {
      ++report.failures_injected;
    }
  }

  if (deadlocked) {
    // Mid-flight state is not meaningful for the remaining invariants;
    // the liveness violation above is the verdict.
    attach_bundle();
    return report;
  }

  const auto& ftrace = runner.trace().events();

  // ---- Invariant 4: recovery bookkeeping and prefix consistency. ----
  if (obs.recovery_starts != obs.recovery_dones) {
    add_violation(report.violations, 4,
                  "unbalanced recovery pipeline: " +
                      std::to_string(obs.recovery_starts) + " starts vs " +
                      std::to_string(obs.recovery_dones) + " completions");
  }
  if (!any_fired) {
    if (report.trace_digest != ref->digest) {
      add_violation(report.violations, 4,
                    "no failure fired but the trace digest diverged from "
                    "the failure-free reference");
    }
  } else {
    // The earliest instant any fired schedule entry could have perturbed
    // the run: the victim's entry into the timestep it strikes.
    sim::TimePoint t_perturb{std::numeric_limits<std::int64_t>::max()};
    for (const core::PlannedFailure& f : runner.runtime().plan()) {
      if (!f.fired) continue;
      const std::string& victim =
          rspec.components[static_cast<std::size_t>(f.comp)].name;
      for (const core::TraceEvent& e : ftrace) {
        if (e.kind == core::TraceKind::kTimestepStart &&
            e.timestep == f.ts && e.component == victim) {
          t_perturb = std::min(t_perturb, e.at);
          break;
        }
      }
    }
    const auto& rtrace = ref->trace;
    const std::size_t n = std::min(ftrace.size(), rtrace.size());
    std::size_t d = 0;
    while (d < n && events_equal(ftrace[d], rtrace[d])) ++d;
    if (d < ftrace.size() || d < rtrace.size()) {
      const bool f_before = d >= ftrace.size() || ftrace[d].at < t_perturb;
      const bool r_before = d >= rtrace.size() || rtrace[d].at < t_perturb;
      if (f_before && r_before) {
        add_violation(
            report.violations, 4,
            "trace diverged before the first failure struck (at " +
                std::to_string(t_perturb.seconds()) + "s): got " +
                (d < ftrace.size() ? describe(ftrace[d]) : "end of trace") +
                ", reference has " +
                (d < rtrace.size() ? describe(rtrace[d]) : "end of trace"));
      }
    }
  }

  // ---- Invariant 4 (structural): every recovered logged component must
  // pass through log replay before it resumes timesteps. Catches a
  // skipped replay stage even when idempotent re-puts keep the data
  // correct by accident.
  std::map<std::string, bool> logged_by_name;
  for (const auto& c : rspec.components) {
    logged_by_name[c.name] = real_policy->component_logged(c);
  }
  for (std::size_t i = 0; i < ftrace.size(); ++i) {
    const core::TraceEvent& e = ftrace[i];
    if (e.kind != core::TraceKind::kRecoveryDone) continue;
    if (!logged_by_name[e.component]) continue;
    bool replayed = false;
    bool resumed = false;
    for (std::size_t j = i + 1; j < ftrace.size(); ++j) {
      if (ftrace[j].component != e.component) continue;
      if (ftrace[j].kind == core::TraceKind::kReplayDone) {
        replayed = true;
        break;
      }
      if (ftrace[j].kind == core::TraceKind::kTimestepStart) {
        resumed = true;
        break;
      }
    }
    if (!replayed) {
      add_violation(report.violations, 4,
                    e.component + " recovered at ts " +
                        std::to_string(e.timestep) +
                        (resumed ? " and resumed without log replay"
                                 : " but never replayed or resumed"));
    }
  }

  // ---- Invariant 5: restart-level equivalence (hierarchy only). ----
  // Every restart the hierarchy served must (a) have byte-verified the
  // restored state against the checksum taken at write time — so a cache
  // or partner-rebuilt restart is provably identical to what a PFS restart
  // of the same set would load — and (b) never be older than the durable
  // PFS anchor available at the same instant, which is how a partial or
  // in-flight drain could smuggle in a stale restart point.
  if (const ckpt::CheckpointHierarchy* hier =
          runner.runtime().ckpt_hierarchy()) {
    for (const ckpt::RestartRecord& r : hier->restart_records()) {
      if (!r.checksum_ok) {
        add_violation(report.violations, 5,
                      "restart of app " + std::to_string(r.app) + " at ts " +
                          std::to_string(r.ts) + " from level " +
                          ckpt::ckpt_level_name(r.level) +
                          " failed byte verification against the write-time "
                          "checksum");
      }
      if (r.ts < r.pfs_ts_at_choice) {
        add_violation(report.violations, 5,
                      "restart of app " + std::to_string(r.app) +
                          " chose ts " + std::to_string(r.ts) + " from level " +
                          ckpt::ckpt_level_name(r.level) +
                          " although a durable PFS checkpoint at ts " +
                          std::to_string(r.pfs_ts_at_choice) +
                          " was already available");
      }
    }
  }

  // ---- Invariant 2: replayed consumers read what the reference read. ----
  // Membership churn makes the producer's chunk decomposition epoch-
  // dependent: a put landing before vs after a join/retire merges cells
  // into different — equally complete — chunk sets, with per-chunk
  // synthetic payloads to match. Piece-identity checksums are therefore
  // only comparable across runs when the group is fixed; elastic
  // schedules fall back to content completeness (byte totals + anomaly
  // flags), which is the paper-level read guarantee.
  const bool chunking_stable = s.elastic.empty();
  for (const auto& [key, occurrences] : obs.reads) {
    const auto it = ref->reads.find(key);
    if (it == ref->reads.end()) {
      add_violation(report.violations, 2,
                    "read " + key + " has no reference counterpart");
      continue;
    }
    const std::string comp_name = key.substr(0, key.find('|'));
    const bool must_match = logged_by_name[comp_name];
    const ReferenceCache::ReadObs& expect = it->second;
    for (const ReferenceCache::ReadObs& got : occurrences) {
      if ((got.checksum == expect.checksum || !chunking_stable) &&
          got.bytes == expect.bytes) {
        continue;
      }
      if (!must_match && got.anomalies > 0) continue;  // flagged, not silent
      add_violation(
          report.violations, 2,
          "read " + key + " diverged from the reference" +
              (must_match ? " (logged consumer must replay identically)"
                          : " with no anomaly flag raised") +
              ": got checksum=" + std::to_string(got.checksum) + " bytes=" +
              std::to_string(got.bytes) + " anomalies=" +
              std::to_string(got.anomalies) + ", want checksum=" +
              std::to_string(expect.checksum) + " bytes=" +
              std::to_string(expect.bytes) + " anomalies=" +
              std::to_string(expect.anomalies));
    }
  }

  // ---- Invariant 6: tenant isolation (multi-tenant schedules only). ----
  // Failures target tenant 0 (the schedule validator enforces it), so
  // every other tenant is a bystander whose reads must be bit-for-bit what
  // the same workflow observes running solo — tenant 0's crashes,
  // rollbacks, GC sweeps and spills must be invisible to co-tenants.
  // Bystander read keys carry the "@t<N>" clone suffix; stripping it
  // rebases them onto the single-tenant reference. Content identity is
  // tenant-invariant (chunk payloads key on the base variable), so
  // checksums and byte counts are directly comparable across namespaces.
  if (s.tenants > 1) {
    Schedule solo = s;
    solo.tenants = 1;
    const auto solo_ref = cache.reference_for(solo);
    for (const auto& [key, occurrences] : obs.reads) {
      const std::size_t bar = key.find('|');
      const std::size_t at = key.rfind("@t", bar);
      if (at == std::string::npos) continue;  // tenant 0: not a bystander
      const std::string solo_key = key.substr(0, at) + key.substr(bar);
      const auto it = solo_ref->reads.find(solo_key);
      if (it == solo_ref->reads.end()) {
        add_violation(report.violations, 6,
                      "bystander read " + key +
                          " has no solo-run counterpart " + solo_key);
        continue;
      }
      const ReferenceCache::ReadObs& expect = it->second;
      for (const ReferenceCache::ReadObs& got : occurrences) {
        ++report.isolation_reads_checked;
        if ((got.checksum == expect.checksum || !chunking_stable) &&
            got.bytes == expect.bytes && got.anomalies == expect.anomalies) {
          continue;
        }
        add_violation(
            report.violations, 6,
            "bystander read " + key + " differs from the solo run (" +
                solo_key + "): got checksum=" + std::to_string(got.checksum) +
                " bytes=" + std::to_string(got.bytes) + " anomalies=" +
                std::to_string(got.anomalies) + ", solo has checksum=" +
                std::to_string(expect.checksum) + " bytes=" +
                std::to_string(expect.bytes) + " anomalies=" +
                std::to_string(expect.anomalies));
      }
    }
  }

  // ---- Invariant 7: codec transparency (codec schedules only). ----
  // The codec-armed reference run must read exactly what a codec-off run
  // of the same configuration reads: compression and delta encoding of the
  // write log are never observable through any read path. Invariant 2
  // already pins this failure run's reads to the codec-armed reference, so
  // together the chain run == codec-armed ref == codec-off ref holds
  // bit-for-bit (checksums compare piece identity; the timing of the two
  // references may differ — encoded wire sizes are the point — so only
  // read content is compared, never the trace digest).
  if (s.codec != wlog::codec::Scheme::kNone) {
    Schedule raw = s;
    raw.codec = wlog::codec::Scheme::kNone;
    const auto raw_ref = cache.reference_for(raw);
    for (const auto& [key, expect] : ref->reads) {
      ++report.codec_reads_checked;
      const auto it = raw_ref->reads.find(key);
      if (it == raw_ref->reads.end()) {
        add_violation(report.violations, 7,
                      "codec-armed read " + key +
                          " has no codec-off counterpart");
        continue;
      }
      const ReferenceCache::ReadObs& want = it->second;
      if (expect.checksum == want.checksum && expect.bytes == want.bytes &&
          expect.anomalies == want.anomalies) {
        continue;
      }
      add_violation(
          report.violations, 7,
          "codec-armed read " + key + " differs from the codec-off run: " +
              "got checksum=" + std::to_string(expect.checksum) + " bytes=" +
              std::to_string(expect.bytes) + " anomalies=" +
              std::to_string(expect.anomalies) + ", codec-off has checksum=" +
              std::to_string(want.checksum) + " bytes=" +
              std::to_string(want.bytes) + " anomalies=" +
              std::to_string(want.anomalies));
    }
  }

  // ---- Invariant 1: durability of committed versions. ----
  // Committed versions per var, recovered from the write trail (replayed
  // re-puts are suppressed but still acknowledged, so a set suffices).
  std::map<std::string, const core::ComponentSpec*> spec_by_name;
  for (const auto& c : rspec.components) spec_by_name[c.name] = &c;
  std::map<std::string, std::set<Version>> written;
  std::map<std::string, Box> write_region;
  std::map<std::string, std::map<int, int>> write_occurrence;
  for (const core::TraceEvent& e : ftrace) {
    if (e.kind != core::TraceKind::kWriteDone) continue;
    const core::ComponentSpec* c = spec_by_name[e.component];
    if (c == nullptr || c->writes.empty()) continue;
    const int k = write_occurrence[e.component][e.timestep]++;
    const auto& w =
        c->writes[static_cast<std::size_t>(k) % c->writes.size()];
    const std::string var = staging::tenant_key(c->tenant, w.var);
    written[var].insert(static_cast<Version>(e.timestep));
    write_region.emplace(
        var, runner.runtime().subset_region(w.subset_fraction));
  }

  // Integrity: every chunk still retained anywhere must be byte-exact for
  // its declared (var, version) — in every scheme.
  for (std::size_t si = 0; si < servers.size(); ++si) {
    const staging::StagingServer& srv = *servers[si];
    const auto verify_holdings = [&](const auto& holder, const char* what) {
      for (const std::string& var : holder.variables()) {
        for (Version v : holder.versions_of(var)) {
          for (const staging::Chunk& chunk :
               holder.get(var, v, rspec.domain)) {
            if (staging::check_chunk(chunk, var, v) !=
                staging::ChunkCheck::kOk) {
              add_violation(report.violations, 1,
                            std::string(what) + " on server " +
                                std::to_string(si) + " retains a corrupt " +
                                var + " v" + std::to_string(v) + " chunk");
            }
          }
        }
      }
    };
    verify_holdings(srv.store(), "store");
    verify_holdings(srv.data_log(), "data log");
  }
  // The spill gateway is one more holder: everything it persisted on the
  // servers' behalf must be byte-exact too.
  if (const staging::SpillGateway* gw = runner.runtime().spill_gateway()) {
    for (const std::string& var : gw->variables()) {
      for (Version v : gw->versions_of(var)) {
        for (const staging::Chunk& chunk : gw->get(var, v, rspec.domain)) {
          if (staging::check_chunk(chunk, var, v) !=
              staging::ChunkCheck::kOk) {
            add_violation(report.violations, 1,
                          "spill gateway retains a corrupt " + var + " v" +
                              std::to_string(v) + " chunk");
          }
        }
      }
    }
  }

  // Retention: under a logging scheme, every committed version a
  // rolled-back consumer could still demand must remain fully covered by
  // the union of store and log holdings.
  if (real_policy->uses_logging()) {
    for (const auto& [var, versions] : written) {
      if (consumers.find(var) == consumers.end() ||
          consumers.at(var).empty()) {
        continue;  // nobody can roll back onto this var
      }
      Version required_above = 0;
      for (std::size_t si = 0; si < servers.size(); ++si) {
        required_above =
            std::max(required_above, true_watermark(obs, si, var, consumers));
      }
      const Box& region = write_region.at(var);
      for (Version v : versions) {
        if (v <= required_above) continue;
        std::vector<Box> cover;
        for (const auto& srv : servers) {
          for (const staging::Chunk& chunk : srv->store().get(var, v, region))
            cover.push_back(chunk.region);
          for (const staging::Chunk& chunk :
               srv->data_log().get(var, v, region))
            cover.push_back(chunk.region);
        }
        // Spilled versions count as retained: replay faults them back in
        // from the PFS transparently.
        if (const staging::SpillGateway* gw =
                runner.runtime().spill_gateway()) {
          for (const staging::Chunk& chunk : gw->get(var, v, region))
            cover.push_back(chunk.region);
        }
        if (!boxes_cover(region, cover)) {
          add_violation(report.violations, 1,
                        "committed " + var + " v" + std::to_string(v) +
                            " (above watermark v" +
                            std::to_string(required_above) +
                            ") is no longer fully retained");
        }
      }
    }
  }

  attach_bundle();
  return report;
}

}  // namespace dstage::check
