#include "check/shrink.hpp"

#include <utility>

namespace dstage::check {

ShrinkResult shrink_schedule(const Schedule& failing, ReferenceCache& cache,
                             Sabotage sabotage, int budget) {
  ShrinkResult result;
  result.minimal = failing;
  result.report = check_schedule(failing, cache, sabotage);
  result.attempts = 1;
  if (result.report.ok()) return result;  // not failing: nothing to shrink

  // Adopt `candidate` iff it still fails; returns whether it was adopted.
  const auto try_adopt = [&](Schedule candidate) {
    if (result.attempts >= budget) return false;
    ++result.attempts;
    OracleReport report = check_schedule(candidate, cache, sabotage);
    if (report.ok()) return false;
    result.minimal = std::move(candidate);
    result.report = std::move(report);
    return true;
  };

  // Phase 1: drop whole failures, greedily to a fixpoint. Scanning from
  // the back keeps indices of unvisited entries stable after an erase.
  bool changed = true;
  while (changed && result.attempts < budget) {
    changed = false;
    for (std::size_t i = result.minimal.failures.size(); i-- > 0;) {
      Schedule candidate = result.minimal;
      candidate.failures.erase(candidate.failures.begin() +
                               static_cast<std::ptrdiff_t>(i));
      if (try_adopt(std::move(candidate))) changed = true;
      if (result.attempts >= budget) break;
    }
  }

  // Phase 2: simplify the survivors, one field at a time.
  for (std::size_t i = 0; i < result.minimal.failures.size(); ++i) {
    const auto tweak = [&](auto&& mutate) {
      Schedule candidate = result.minimal;
      mutate(candidate.failures[i]);
      if (candidate.failures[i] == result.minimal.failures[i]) return;
      try_adopt(std::move(candidate));
    };
    tweak([](ScheduleFailure& f) { f.node_level = false; });
    tweak([](ScheduleFailure& f) { f.predicted = false; });
    tweak([](ScheduleFailure& f) {
      if (f.phase >= 0) f.phase = 0.5;  // keep false alarms as alarms
    });
    // Bisect the strike timestep toward 1.
    int lo = 1;
    while (lo < result.minimal.failures[i].ts && result.attempts < budget) {
      const int mid = lo + (result.minimal.failures[i].ts - lo) / 2;
      Schedule candidate = result.minimal;
      candidate.failures[i].ts = mid;
      if (!try_adopt(std::move(candidate))) lo = mid + 1;
    }
  }

  return result;
}

}  // namespace dstage::check
