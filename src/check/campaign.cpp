#include "check/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>

namespace dstage::check {

CampaignResult run_campaign(const CampaignOptions& opts) {
  const std::vector<Schedule> schedules = generate_schedules(opts.gen);

  CampaignResult result;
  result.schedules = static_cast<int>(schedules.size());
  if (schedules.empty()) return result;

  ReferenceCache cache;
  std::vector<OracleReport> reports(schedules.size());

  const int jobs = static_cast<int>(schedules.size());
  int threads = opts.threads;
  if (threads <= 0) {
    threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  threads = std::min(threads, jobs);

  std::atomic<int> next{0};
  std::vector<std::exception_ptr> errors(schedules.size());
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int i = next.fetch_add(1); i < jobs; i = next.fetch_add(1)) {
          const auto idx = static_cast<std::size_t>(i);
          try {
            reports[idx] = check_schedule(schedules[idx], cache,
                                          opts.sabotage);
          } catch (...) {
            errors[idx] = std::current_exception();
          }
        }
      });
    }
  }  // jthread joins here
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  for (std::size_t i = 0; i < schedules.size(); ++i) {
    result.total_failures_injected += reports[i].failures_injected;
    result.spilled_versions += reports[i].spilled_versions;
    result.spill_fetches += reports[i].spill_fetches;
    result.puts_rejected += reports[i].puts_rejected;
    result.backpressure_waits += reports[i].backpressure_waits;
    result.resilver_chunks_moved += reports[i].resilver_chunks_moved;
    result.resilver_drops += reports[i].resilver_drops;
    result.wrong_epoch_rejects += reports[i].wrong_epoch_rejects;
    result.degraded_reads += reports[i].degraded_reads;
    result.ckpt_drains_completed += reports[i].ckpt_drains_completed;
    result.ckpt_cache_restarts += reports[i].ckpt_cache_restarts;
    result.ckpt_partner_rebuilds += reports[i].ckpt_partner_rebuilds;
    result.ckpt_pfs_restarts += reports[i].ckpt_pfs_restarts;
    result.isolation_reads_checked += reports[i].isolation_reads_checked;
    result.codec_reads_checked += reports[i].codec_reads_checked;
    result.codec_blocks_encoded += reports[i].codec_blocks_encoded;
    result.codec_raw_bytes += reports[i].codec_raw_bytes;
    result.codec_stored_bytes += reports[i].codec_stored_bytes;
    if (reports[i].ok()) {
      ++result.passed;
      continue;
    }
    CampaignFailure failure;
    failure.schedule = schedules[i];
    failure.report = std::move(reports[i]);
    failure.shrunk = schedules[i];
    result.failures.push_back(std::move(failure));
  }

  // Shrink serially: each shrink is itself a budgeted oracle loop, and a
  // healthy campaign has nothing to shrink.
  if (opts.shrink) {
    const int to_shrink = std::min<int>(
        opts.max_shrunk, static_cast<int>(result.failures.size()));
    for (int i = 0; i < to_shrink; ++i) {
      CampaignFailure& failure =
          result.failures[static_cast<std::size_t>(i)];
      ShrinkResult shrunk = shrink_schedule(failure.schedule, cache,
                                            opts.sabotage,
                                            opts.shrink_budget);
      failure.shrunk = std::move(shrunk.minimal);
      failure.report = std::move(shrunk.report);
      failure.shrink_attempts = shrunk.attempts;
    }
  }

  return result;
}

}  // namespace dstage::check
