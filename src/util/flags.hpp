// Minimal command-line flag parsing for the CLI driver and bench binaries:
// --name=value / --name value / --bool-switch. No external dependencies.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace dstage {

class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) > 0;
  }
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  /// Flags that were provided but never queried (typo detection).
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace dstage
