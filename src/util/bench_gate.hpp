// The bench baseline gate's comparison core, shared between
// tools/bench_compare and its unit tests. Walks a baseline JSON tree and
// flags every numeric leaf that is missing from the candidate or deviates
// beyond the tolerance.
//
// Deviation is |cand - base| / max(|base|, abs_floor): relative to the
// baseline's magnitude (sign-agnostic, so "lower is better" metrics and
// negative deltas gate exactly like positive ones), with an absolute floor
// so a zero or near-zero baseline cannot divide away into infinity — a
// zero baseline with the default floor of 1 tolerates only candidates
// within `tolerance` in absolute terms (0 backpressure waits becoming 3 is
// a behavioral shift, not noise; 0 becoming 0.1 with a 15% tolerance is
// noise). Non-finite numbers on either side always fail: a NaN candidate
// must never slip through a `dev > tolerance` comparison that is false for
// NaN.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "util/json_reader.hpp"

namespace dstage::bench_gate {

struct Gate {
  double tolerance = 0.15;
  /// Absolute floor for the deviation denominator (see file comment).
  double abs_floor = 1.0;
  int checked = 0;
  std::vector<std::string> problems;

  void fail(const std::string& path, const std::string& why) {
    problems.push_back(path + ": " + why);
  }

  void compare_number(const std::string& path, const JsonValue& base,
                      const JsonValue& cand) {
    ++checked;
    const double b = base.number;
    const double c = cand.number;
    if (!std::isfinite(b) || !std::isfinite(c)) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "non-finite value (baseline %g, candidate %g)", b, c);
      fail(path, buf);
      return;
    }
    if (b == c) return;
    const double denom = std::max(std::abs(b), abs_floor);
    const double dev = std::abs(c - b) / denom;
    if (dev > tolerance) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "baseline %g, candidate %g (%+.1f%% > %.0f%% tolerance)",
                    b, c, (c - b) / denom * 100.0, tolerance * 100.0);
      fail(path, buf);
    }
  }

  /// Walk the baseline tree; every numeric leaf must exist in the
  /// candidate at the same path and match within tolerance. Extra
  /// candidate keys are fine (new metrics are not regressions).
  void compare(const std::string& path, const JsonValue& base,
               const JsonValue& cand) {
    if (base.is_object()) {
      if (!cand.is_object()) {
        fail(path, "baseline is an object, candidate is not");
        return;
      }
      for (const auto& [key, value] : base.object) {
        const std::string child = path.empty() ? key : path + "." + key;
        const JsonValue* c = cand.member(key);
        if (c == nullptr) {
          fail(child, "present in baseline, missing from candidate");
          continue;
        }
        compare(child, value, *c);
      }
      return;
    }
    if (base.is_array()) {
      if (!cand.is_array()) {
        fail(path, "baseline is an array, candidate is not");
        return;
      }
      if (base.array.size() != cand.array.size()) {
        fail(path, "array length " + std::to_string(cand.array.size()) +
                       ", baseline " + std::to_string(base.array.size()));
        return;
      }
      for (std::size_t i = 0; i < base.array.size(); ++i) {
        compare(path + "[" + std::to_string(i) + "]", base.array[i],
                cand.array[i]);
      }
      return;
    }
    if (base.is_number()) {
      if (!cand.is_number()) {
        fail(path, "baseline is a number, candidate is not");
        return;
      }
      compare_number(path, base, cand);
    }
    // Strings / bools / nulls are labels, not measurements — not gated.
  }
};

}  // namespace dstage::bench_gate
