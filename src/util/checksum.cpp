#include "util/checksum.hpp"

namespace dstage {

namespace {
std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Science-like payload texture: a fixed 64-byte background pattern (smooth
// field data compresses well) with every 8th word carrying key-dependent
// noise. The noise positions are the same for every key, so two versions
// of the same region differ only in the noise words — exactly the sparse
// XOR structure the wlog codec's delta schemes exploit — while a single
// payload stays LZ-compressible through the repeating background. Any byte
// flip still breaks verify_payload: the pattern words are position-exact
// and the noise words are key-exact.
constexpr std::uint64_t kBackground[8] = {
    0x1f1f1f1f1f1f1f1fULL, 0x2e2e2e2e2e2e2e2eULL, 0x3d3d3d3d3d3d3d3dULL,
    0x4c4c4c4c4c4c4c4cULL, 0x5b5b5b5b5b5b5b5bULL, 0x6a6a6a6a6a6a6a6aULL,
    0x7979797979797979ULL, 0x0808080808080808ULL,
};

/// Word `i` of the payload stream for a key whose noise state is `s`.
/// Advances `s` only on noise words, so fill and verify stay in lockstep.
std::uint64_t payload_word(std::size_t i, std::uint64_t& s) {
  if ((i & 7) == 0) return splitmix64(s);
  return kBackground[i & 7];
}
}  // namespace

std::uint64_t content_key(std::string_view variable, std::uint32_t version,
                          std::uint64_t region_hash) {
  std::uint64_t h = fnv1a_str(variable);
  h ^= (static_cast<std::uint64_t>(version) + 0x9e3779b97f4a7c15ULL) *
       0xff51afd7ed558ccdULL;
  h ^= region_hash * 0xc4ceb9fe1a85ec53ULL;
  return h;
}

void fill_payload(std::span<std::byte> out, std::uint64_t key) {
  std::uint64_t s = key;
  std::size_t i = 0;
  std::size_t word = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t w = payload_word(word++, s);
    for (int b = 0; b < 8; ++b)
      out[i + static_cast<std::size_t>(b)] =
          static_cast<std::byte>((w >> (8 * b)) & 0xff);
    i += 8;
  }
  if (i < out.size()) {
    const std::uint64_t w = payload_word(word, s);
    for (int b = 0; i < out.size(); ++i, ++b)
      out[i] = static_cast<std::byte>((w >> (8 * b)) & 0xff);
  }
}

std::vector<std::byte> make_payload(std::size_t n, std::uint64_t key) {
  std::vector<std::byte> v(n);
  fill_payload(v, key);
  return v;
}

bool verify_payload(std::span<const std::byte> data, std::uint64_t key) {
  std::uint64_t s = key;
  std::size_t i = 0;
  std::size_t word = 0;
  while (i + 8 <= data.size()) {
    const std::uint64_t w = payload_word(word++, s);
    for (int b = 0; b < 8; ++b) {
      if (data[i + static_cast<std::size_t>(b)] !=
          static_cast<std::byte>((w >> (8 * b)) & 0xff))
        return false;
    }
    i += 8;
  }
  if (i < data.size()) {
    const std::uint64_t w = payload_word(word, s);
    for (int b = 0; i < data.size(); ++i, ++b) {
      if (data[i] != static_cast<std::byte>((w >> (8 * b)) & 0xff))
        return false;
    }
  }
  return true;
}

}  // namespace dstage
