#include "util/hilbert.hpp"

#include <stdexcept>

namespace dstage {

namespace {

// Skilling's transform: converts between Hilbert "transposed" form and
// ordinary coordinates, in place. X holds one word per axis with `bits`
// significant bits each.
void axes_to_transpose(std::array<std::uint32_t, 3>& x, int bits) {
  constexpr int n = 3;
  std::uint32_t m = std::uint32_t{1} << (bits - 1);
  // Inverse undo of the Gray-code-like mixing.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i)
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

void transpose_to_axes(std::array<std::uint32_t, 3>& x, int bits) {
  constexpr int n = 3;
  const std::uint32_t m = std::uint32_t{2} << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i)
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != m; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t w = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= w;
        x[static_cast<std::size_t>(i)] ^= w;
      }
    }
  }
}

// Interleave the transposed representation into a single 64-bit index, most
// significant bit of axis 0 first.
std::uint64_t interleave(const std::array<std::uint32_t, 3>& x, int bits) {
  std::uint64_t out = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < 3; ++i) {
      out = (out << 1) |
            ((x[static_cast<std::size_t>(i)] >> b) & std::uint32_t{1});
    }
  }
  return out;
}

}  // namespace

HilbertCurve::HilbertCurve(int order) : order_(order) {
  if (order < 1 || order > 20)
    throw std::invalid_argument("hilbert order must be in [1,20]");
}

std::uint64_t HilbertCurve::index_of(std::uint32_t x, std::uint32_t y,
                                     std::uint32_t z) const {
  const std::uint32_t limit = std::uint32_t{1} << order_;
  if (x >= limit || y >= limit || z >= limit)
    throw std::out_of_range("hilbert coordinate out of range");
  std::array<std::uint32_t, 3> v{x, y, z};
  axes_to_transpose(v, order_);
  return interleave(v, order_);
}

std::array<std::uint32_t, 3> HilbertCurve::point_of(std::uint64_t index) const {
  if (index >= length()) throw std::out_of_range("hilbert index out of range");
  // Recover transposed form: bit b of the index group goes to axis i.
  std::array<std::uint32_t, 3> v{0, 0, 0};
  for (int b = order_ - 1; b >= 0; --b) {
    for (int i = 0; i < 3; ++i) {
      const int shift = 3 * b + (2 - i);
      v[static_cast<std::size_t>(i)] |=
          static_cast<std::uint32_t>((index >> shift) & 1u) << b;
    }
  }
  transpose_to_axes(v, order_);
  return v;
}

}  // namespace dstage
