// Deterministic random number generation for failure injection and workload
// synthesis. All experiment randomness flows through Rng so a (seed, scheme)
// pair fully determines a run — a requirement for the replay-equivalence
// property tests.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace dstage {

/// xoshiro256** seeded via SplitMix64. Header-only, no global state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive (requires lo <= hi).
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % span;
    std::uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return lo + v % span;
  }

  int uniform_int(int lo, int hi) {
    return static_cast<int>(
        uniform_u64(0, static_cast<std::uint64_t>(hi - lo))) + lo;
  }

  /// Exponential with the given mean (MTBF draws).
  double exponential(double mean) {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Pick an index in [0, n) with probability proportional to weights[i].
  template <class Weights>
  int weighted_pick(const Weights& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = next_double() * total;
    int i = 0;
    const int n = static_cast<int>(weights.size());
    for (; i < n - 1; ++i) {
      r -= weights[static_cast<std::size_t>(i)];
      if (r < 0) break;
    }
    return i;
  }

  /// Deterministically derive an independent stream (e.g. per component).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    return Rng(state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^ state_[3]);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t splitmix64(std::uint64_t& s) {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4];
};

}  // namespace dstage
