// Payload synthesis and verification. Every staged object carries real bytes
// whose content is a deterministic function of (variable, version, region),
// so any consumer can detect the Fig.-2 anomalies (reading the wrong version
// after a restart) by checksum mismatch rather than by trusting the protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace dstage {

/// FNV-1a 64-bit.
constexpr std::uint64_t fnv1a(std::span<const std::byte> data,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t fnv1a_str(std::string_view s,
                                  std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes a tag tuple into a single content key.
std::uint64_t content_key(std::string_view variable, std::uint32_t version,
                          std::uint64_t region_hash);

/// Fills `out` with bytes derived from `key` (SplitMix64 stream).
void fill_payload(std::span<std::byte> out, std::uint64_t key);

/// Creates a payload of `n` bytes for `key`.
std::vector<std::byte> make_payload(std::size_t n, std::uint64_t key);

/// True when `data` matches fill_payload(key) byte-for-byte.
bool verify_payload(std::span<const std::byte> data, std::uint64_t key);

}  // namespace dstage
