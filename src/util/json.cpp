#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace dstage {

Json::Json(bool b) : kind_(Kind::kLiteral), scalar_(b ? "true" : "false") {}
Json::Json(int v) : kind_(Kind::kLiteral), scalar_(std::to_string(v)) {}
Json::Json(std::int64_t v)
    : kind_(Kind::kLiteral), scalar_(std::to_string(v)) {}
Json::Json(std::uint64_t v)
    : kind_(Kind::kLiteral), scalar_(std::to_string(v)) {}

Json::Json(double v) {
  if (!std::isfinite(v)) return;  // null
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  kind_ = Kind::kLiteral;
  scalar_ = buf;
}

Json::Json(const char* s) : kind_(Kind::kString), scalar_(s) {}
Json::Json(std::string s) : kind_(Kind::kString), scalar_(std::move(s)) {}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(std::string key, Json value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  kind_ = Kind::kArray;
  elements_.push_back(std::move(value));
  return *this;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Json::dump_inner(std::ostream& os, int depth) const {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kLiteral:
      os << scalar_;
      break;
    case Kind::kString:
      os << json_quote(scalar_);
      break;
    case Kind::kArray:
      if (elements_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        os << pad_in;
        elements_[i].dump_inner(os, depth + 1);
        os << (i + 1 < elements_.size() ? ",\n" : "\n");
      }
      os << pad << ']';
      break;
    case Kind::kObject:
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        os << pad_in << json_quote(members_[i].first) << ": ";
        members_[i].second.dump_inner(os, depth + 1);
        os << (i + 1 < members_.size() ? ",\n" : "\n");
      }
      os << pad << '}';
      break;
  }
}

void Json::dump(std::ostream& os) const {
  dump_inner(os, 0);
  os << '\n';
}

std::string Json::str() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

}  // namespace dstage
