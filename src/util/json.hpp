// Minimal ordered JSON writer for the bench/CLI machine-readable output.
// Write-only by design: build a tree of values, dump it with stable key
// order (insertion order), no external dependencies. Integers are emitted
// exactly (no double round-trip), so 64-bit counters and digests survive.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace dstage {

class Json {
 public:
  /// Scalars. The default-constructed value is JSON null.
  Json() = default;
  Json(bool b);
  Json(int v);
  Json(std::int64_t v);
  Json(std::uint64_t v);
  Json(double v);  // non-finite values degrade to null
  Json(const char* s);
  Json(std::string s);

  [[nodiscard]] static Json object();
  [[nodiscard]] static Json array();

  /// Object member (insertion-ordered; duplicate keys overwrite in place).
  Json& set(std::string key, Json value);
  /// Array element.
  Json& push(Json value);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] std::size_t size() const {
    return is_object() ? members_.size() : elements_.size();
  }

  /// Pretty-print with 2-space indentation and a trailing newline at the
  /// top level.
  void dump(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

 private:
  enum class Kind { kNull, kLiteral, kString, kArray, kObject };

  void dump_inner(std::ostream& os, int depth) const;

  Kind kind_ = Kind::kNull;
  std::string scalar_;  // literal text (kLiteral) or raw string (kString)
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// JSON string escaping (quotes included).
std::string json_quote(const std::string& s);

}  // namespace dstage
