// Minimal JSON reader, the counterpart of the write-only util/json.hpp
// builder. One self-contained recursive-descent parser shared by the
// Chrome-trace validator, the forensic-bundle loader, and the bench
// baseline gate. Numbers keep their source literal alongside the parsed
// double, so 64-bit counters, digests, and checksums survive a round-trip
// through the writer exactly (a double would silently lose precision
// above 2^53).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dstage {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  /// Exact source text of a number token (empty for other kinds).
  std::string literal;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup (first match; nullptr when absent or not an
  /// object).
  [[nodiscard]] const JsonValue* member(const std::string& key) const;

  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Exact 64-bit reads off the preserved literal. Return the fallback
  /// when the value is not a number.
  [[nodiscard]] std::int64_t as_i64(std::int64_t fallback = 0) const;
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const;
};

struct JsonParse {
  bool ok = false;
  JsonValue value;
  /// Parse errors, at most a handful, each with a byte offset.
  std::vector<std::string> errors;
};

/// Parse one complete JSON document (trailing garbage is an error).
[[nodiscard]] JsonParse parse_json(const std::string& text);

}  // namespace dstage
