// 3-d Hilbert space-filling curve used to partition the global domain across
// staging servers while preserving spatial locality (DataSpaces' DHT keys
// metadata by SFC index so neighbouring regions land on neighbouring
// servers). Implementation follows John Skilling, "Programming the Hilbert
// curve", AIP Conf. Proc. 707 (2004).
#pragma once

#include <array>
#include <cstdint>

namespace dstage {

/// Hilbert curve over a 2^order × 2^order × 2^order grid.
class HilbertCurve {
 public:
  /// @param order bits per axis, 1..20 (total index fits in 64 bits for
  ///              order ≤ 21; we cap at 20 to keep headroom).
  explicit HilbertCurve(int order);

  [[nodiscard]] int order() const { return order_; }
  /// Points on the curve: 2^(3*order).
  [[nodiscard]] std::uint64_t length() const {
    return std::uint64_t{1} << (3 * order_);
  }

  /// Map grid coordinates (each < 2^order) to the curve index.
  [[nodiscard]] std::uint64_t index_of(std::uint32_t x, std::uint32_t y,
                                       std::uint32_t z) const;
  /// Inverse of index_of.
  [[nodiscard]] std::array<std::uint32_t, 3> point_of(
      std::uint64_t index) const;

 private:
  int order_;
};

}  // namespace dstage
