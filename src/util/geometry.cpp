#include "util/geometry.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace dstage {

Box Box::from_dims(std::int64_t dx, std::int64_t dy, std::int64_t dz) {
  if (dx <= 0 || dy <= 0 || dz <= 0) return Box{};
  return Box{{0, 0, 0}, {dx - 1, dy - 1, dz - 1}};
}

bool Box::empty() const {
  return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z;
}

std::uint64_t Box::volume() const {
  if (empty()) return 0;
  return static_cast<std::uint64_t>(hi.x - lo.x + 1) *
         static_cast<std::uint64_t>(hi.y - lo.y + 1) *
         static_cast<std::uint64_t>(hi.z - lo.z + 1);
}

bool Box::contains(const Point3& p) const {
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
         p.z >= lo.z && p.z <= hi.z;
}

bool Box::contains(const Box& inner) const {
  if (inner.empty()) return true;
  return contains(inner.lo) && contains(inner.hi);
}

bool Box::intersects(const Box& other) const {
  return !intersection(other).empty();
}

Box Box::intersection(const Box& other) const {
  Box r;
  r.lo = {std::max(lo.x, other.lo.x), std::max(lo.y, other.lo.y),
          std::max(lo.z, other.lo.z)};
  r.hi = {std::min(hi.x, other.hi.x), std::min(hi.y, other.hi.y),
          std::min(hi.z, other.hi.z)};
  if (r.empty()) return Box{};
  return r;
}

Box Box::bounding_union(const Box& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  Box r;
  r.lo = {std::min(lo.x, other.lo.x), std::min(lo.y, other.lo.y),
          std::min(lo.z, other.lo.z)};
  r.hi = {std::max(hi.x, other.hi.x), std::max(hi.y, other.hi.y),
          std::max(hi.z, other.hi.z)};
  return r;
}

std::array<std::int64_t, 3> Box::extents() const {
  if (empty()) return {0, 0, 0};
  return {hi.x - lo.x + 1, hi.y - lo.y + 1, hi.z - lo.z + 1};
}

std::string Box::str() const {
  std::ostringstream os;
  if (empty()) {
    os << "[empty]";
  } else {
    os << "[(" << lo.x << "," << lo.y << "," << lo.z << ")-(" << hi.x << ","
       << hi.y << "," << hi.z << ")]";
  }
  return os.str();
}

BlockDecomposition::BlockDecomposition(Box domain, int px, int py, int pz)
    : domain_(domain), px_(px), py_(py), pz_(pz) {
  if (domain_.empty()) throw std::invalid_argument("empty domain");
  if (px <= 0 || py <= 0 || pz <= 0)
    throw std::invalid_argument("non-positive process grid");
  const auto ext = domain_.extents();
  if (ext[0] < px || ext[1] < py || ext[2] < pz)
    throw std::invalid_argument("more blocks than points on an axis");
}

std::pair<std::int64_t, std::int64_t> BlockDecomposition::axis_range(
    std::int64_t lo, std::int64_t extent, int parts, int idx) const {
  const std::int64_t base = extent / parts;
  const std::int64_t rem = extent % parts;
  const std::int64_t start =
      lo + idx * base + std::min<std::int64_t>(idx, rem);
  const std::int64_t len = base + (idx < rem ? 1 : 0);
  return {start, start + len - 1};
}

Box BlockDecomposition::block(int rank) const {
  if (rank < 0 || rank >= block_count())
    throw std::out_of_range("block rank out of range");
  const int ix = rank % px_;
  const int iy = (rank / px_) % py_;
  const int iz = rank / (px_ * py_);
  const auto ext = domain_.extents();
  const auto [x0, x1] = axis_range(domain_.lo.x, ext[0], px_, ix);
  const auto [y0, y1] = axis_range(domain_.lo.y, ext[1], py_, iy);
  const auto [z0, z1] = axis_range(domain_.lo.z, ext[2], pz_, iz);
  return Box{{x0, y0, z0}, {x1, y1, z1}};
}

std::vector<std::pair<int, Box>> BlockDecomposition::blocks_intersecting(
    const Box& query) const {
  std::vector<std::pair<int, Box>> out;
  for (int r = 0; r < block_count(); ++r) {
    Box overlap = block(r).intersection(query);
    if (!overlap.empty()) out.emplace_back(r, overlap);
  }
  return out;
}

std::vector<Box> split_box(const Box& box, int pieces) {
  std::vector<Box> out;
  if (box.empty() || pieces <= 0) return out;
  out.push_back(box);
  while (static_cast<int>(out.size()) < pieces) {
    // Split the piece with the largest volume along its longest axis.
    auto it = std::max_element(
        out.begin(), out.end(),
        [](const Box& a, const Box& b) { return a.volume() < b.volume(); });
    const auto ext = it->extents();
    const int axis = static_cast<int>(std::distance(
        ext.begin(), std::max_element(ext.begin(), ext.end())));
    if (ext[axis] < 2) break;  // nothing further to split
    Box a = *it;
    Box b = *it;
    switch (axis) {
      case 0: {
        const std::int64_t mid = a.lo.x + (ext[0] / 2) - 1;
        a.hi.x = mid;
        b.lo.x = mid + 1;
        break;
      }
      case 1: {
        const std::int64_t mid = a.lo.y + (ext[1] / 2) - 1;
        a.hi.y = mid;
        b.lo.y = mid + 1;
        break;
      }
      default: {
        const std::int64_t mid = a.lo.z + (ext[2] / 2) - 1;
        a.hi.z = mid;
        b.lo.z = mid + 1;
        break;
      }
    }
    *it = a;
    out.push_back(b);
  }
  return out;
}

std::vector<Box> box_difference(const Box& a, const Box& b) {
  std::vector<Box> out;
  append_box_difference(a, b, out);
  return out;
}

void append_box_difference(const Box& a, const Box& b,
                           std::vector<Box>& out) {
  if (a.empty()) return;
  const Box cut = a.intersection(b);
  if (cut.empty()) {
    out.push_back(a);
    return;
  }
  // Peel up to six slabs around the cut, axis by axis.
  Box rest = a;
  auto peel = [&out](Box slab) {
    if (!slab.empty()) out.push_back(slab);
  };
  // x-slabs
  if (rest.lo.x < cut.lo.x)
    peel(Box{{rest.lo.x, rest.lo.y, rest.lo.z},
             {cut.lo.x - 1, rest.hi.y, rest.hi.z}});
  if (rest.hi.x > cut.hi.x)
    peel(Box{{cut.hi.x + 1, rest.lo.y, rest.lo.z},
             {rest.hi.x, rest.hi.y, rest.hi.z}});
  rest.lo.x = cut.lo.x;
  rest.hi.x = cut.hi.x;
  // y-slabs
  if (rest.lo.y < cut.lo.y)
    peel(Box{{rest.lo.x, rest.lo.y, rest.lo.z},
             {rest.hi.x, cut.lo.y - 1, rest.hi.z}});
  if (rest.hi.y > cut.hi.y)
    peel(Box{{rest.lo.x, cut.hi.y + 1, rest.lo.z},
             {rest.hi.x, rest.hi.y, rest.hi.z}});
  rest.lo.y = cut.lo.y;
  rest.hi.y = cut.hi.y;
  // z-slabs
  if (rest.lo.z < cut.lo.z)
    peel(Box{{rest.lo.x, rest.lo.y, rest.lo.z},
             {rest.hi.x, rest.hi.y, cut.lo.z - 1}});
  if (rest.hi.z > cut.hi.z)
    peel(Box{{rest.lo.x, rest.lo.y, cut.hi.z + 1},
             {rest.hi.x, rest.hi.y, rest.hi.z}});
}

namespace {

/// Subtracts every cover box from `region`, leaving the uncovered pieces in
/// `uncovered`. Two scratch vectors ping-pong so the loop allocates nothing
/// after warm-up.
void subtract_cover(const Box& region, const std::vector<Box>& cover,
                    std::vector<Box>& uncovered) {
  uncovered.clear();
  if (region.empty()) return;
  uncovered.push_back(region);
  std::vector<Box> next;
  for (const Box& c : cover) {
    if (uncovered.empty()) return;
    // Every uncovered piece is a subset of `region`, so a cover box that
    // misses the region cannot touch any piece.
    if (region.intersection(c).empty()) continue;
    next.clear();
    for (const Box& u : uncovered) {
      if (u.intersection(c).empty()) {
        next.push_back(u);
      } else {
        append_box_difference(u, c, next);
      }
    }
    uncovered.swap(next);
  }
}

}  // namespace

bool boxes_cover(const Box& region, const std::vector<Box>& cover) {
  std::vector<Box> uncovered;
  subtract_cover(region, cover, uncovered);
  return uncovered.empty();
}

std::uint64_t uncovered_volume(const Box& region,
                               const std::vector<Box>& cover) {
  std::vector<Box> uncovered;
  subtract_cover(region, cover, uncovered);
  std::uint64_t total = 0;
  for (const Box& u : uncovered) total += u.volume();
  return total;
}

}  // namespace dstage
