#include "util/json_reader.hpp"

#include <cctype>
#include <cstdlib>

namespace dstage {

namespace {

constexpr std::size_t kMaxErrors = 16;
// Containers may nest this deep before the parser refuses the document.
// The parser recurses per nesting level, so an adversarial input like
// 100k '[' characters would otherwise run the real call stack out long
// before any content appears.
constexpr int kMaxDepth = 256;

class Parser {
 public:
  Parser(const std::string& text, std::vector<std::string>& errors)
      : p_(text.data()), end_(text.data() + text.size()), errors_(&errors) {}

  bool parse_document(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (p_ != end_) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (errors_->size() < kMaxErrors) {
      errors_->push_back("json: " + msg + " at offset " +
                         std::to_string(offset_));
    }
    return false;
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      advance();
    }
  }

  void advance() {
    ++p_;
    ++offset_;
  }

  bool literal(const char* word) {
    const char* q = word;
    while (*q != '\0') {
      if (p_ == end_ || *p_ != *q) return fail("bad literal");
      advance();
      ++q;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (p_ == end_ || *p_ != '"') return fail("expected string");
    advance();
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        advance();
        if (p_ == end_) return fail("truncated escape");
        switch (*p_) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              advance();
              if (p_ == end_ || std::isxdigit(static_cast<unsigned char>(
                                    *p_)) == 0) {
                return fail("bad \\u escape");
              }
            }
            out += '?';  // code point value irrelevant for our consumers
            break;
          }
          default:
            return fail("unknown escape");
        }
        advance();
      } else {
        out += *p_;
        advance();
      }
    }
    if (p_ == end_) return fail("unterminated string");
    advance();  // closing quote
    return true;
  }

  bool parse_number(JsonValue& out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) advance();
    bool digits = false;
    auto eat_digits = [&] {
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        digits = true;
        advance();
      }
    };
    eat_digits();
    if (p_ != end_ && *p_ == '.') {
      advance();
      eat_digits();
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      advance();
      if (p_ != end_ && (*p_ == '-' || *p_ == '+')) advance();
      eat_digits();
    }
    if (!digits) return fail("expected number");
    out.literal.assign(start, p_);
    out.number = std::strtod(out.literal.c_str(), nullptr);
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    if (depth_ >= kMaxDepth && (*p_ == '{' || *p_ == '['))
      return fail("nesting too deep");
    switch (*p_) {
      case '{': {
        out.kind = JsonValue::Kind::kObject;
        ++depth_;
        advance();
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
          advance();
          --depth_;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return fail("expected ':'");
          advance();
          JsonValue v;
          if (!parse_value(v)) return false;
          out.object.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') {
            advance();
            continue;
          }
          if (p_ != end_ && *p_ == '}') {
            advance();
            --depth_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        out.kind = JsonValue::Kind::kArray;
        ++depth_;
        advance();
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
          advance();
          --depth_;
          return true;
        }
        for (;;) {
          JsonValue v;
          if (!parse_value(v)) return false;
          out.array.push_back(std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') {
            advance();
            continue;
          }
          if (p_ != end_ && *p_ == ']') {
            advance();
            --depth_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        out.kind = JsonValue::Kind::kNumber;
        return parse_number(out);
    }
  }

  const char* p_;
  const char* end_;
  std::size_t offset_ = 0;
  int depth_ = 0;  // current container nesting, capped at kMaxDepth
  std::vector<std::string>* errors_;
};

}  // namespace

const JsonValue* JsonValue::member(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t JsonValue::as_i64(std::int64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return std::strtoll(literal.c_str(), nullptr, 10);
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return std::strtoull(literal.c_str(), nullptr, 10);
}

JsonParse parse_json(const std::string& text) {
  JsonParse out;
  Parser parser(text, out.errors);
  out.ok = parser.parse_document(out.value);
  return out;
}

}  // namespace dstage
