// 3-d integer geometry for staging: points, axis-aligned bounding boxes and
// regular block decompositions of a global domain. Boxes use inclusive bounds
// on both ends, matching DataSpaces' geometric descriptors.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dstage {

/// A point in the 3-d index space of the global domain.
struct Point3 {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;

  friend bool operator==(const Point3&, const Point3&) = default;
};

/// Axis-aligned box with inclusive lower and upper corners.
///
/// The default-constructed box is *empty* (lo > hi on every axis); empty
/// boxes have zero volume and intersect nothing.
struct Box {
  Point3 lo{0, 0, 0};
  Point3 hi{-1, -1, -1};

  /// Box spanning [0, dims) — the usual whole-domain constructor.
  static Box from_dims(std::int64_t dx, std::int64_t dy, std::int64_t dz);

  [[nodiscard]] bool empty() const;
  /// Number of grid points covered; 0 for an empty box.
  [[nodiscard]] std::uint64_t volume() const;
  [[nodiscard]] bool contains(const Point3& p) const;
  /// True when `inner` lies entirely within this box (empty inner: true).
  [[nodiscard]] bool contains(const Box& inner) const;
  [[nodiscard]] bool intersects(const Box& other) const;
  /// Intersection; empty box when disjoint.
  [[nodiscard]] Box intersection(const Box& other) const;
  /// Smallest box covering both operands (empty operands are ignored).
  [[nodiscard]] Box bounding_union(const Box& other) const;
  [[nodiscard]] std::array<std::int64_t, 3> extents() const;
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Box&, const Box&) = default;
};

/// Splits `domain` into a px × py × pz grid of near-equal blocks, one per
/// rank, mirroring the regular decomposition used by S3D-style producers.
/// Remainder points are distributed to the leading blocks on each axis.
class BlockDecomposition {
 public:
  BlockDecomposition(Box domain, int px, int py, int pz);

  [[nodiscard]] int block_count() const { return px_ * py_ * pz_; }
  /// Box owned by linearized block id `rank` (x-fastest ordering).
  [[nodiscard]] Box block(int rank) const;
  /// All blocks intersecting `query`, as (rank, overlap) pairs.
  [[nodiscard]] std::vector<std::pair<int, Box>> blocks_intersecting(
      const Box& query) const;
  [[nodiscard]] const Box& domain() const { return domain_; }

 private:
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> axis_range(
      std::int64_t lo, std::int64_t extent, int parts, int idx) const;

  Box domain_;
  int px_, py_, pz_;
};

/// Splits a box into at most `max_pieces` near-equal sub-boxes along the
/// longest axis first. Used to shard puts across staging servers.
std::vector<Box> split_box(const Box& box, int pieces);

/// Set difference `a \ b` as up to 6 disjoint boxes (empty when b covers a).
std::vector<Box> box_difference(const Box& a, const Box& b);

/// As box_difference, appending the pieces to `out` (no per-call vector —
/// the coverage subtraction loops call this millions of times).
void append_box_difference(const Box& a, const Box& b, std::vector<Box>& out);

/// True when the union of `cover` contains every point of `region`.
/// Exact even when cover boxes overlap each other.
bool boxes_cover(const Box& region, const std::vector<Box>& cover);

/// Number of points of `region` NOT covered by the union of `cover`.
/// Exact even when cover boxes overlap each other.
std::uint64_t uncovered_volume(const Box& region,
                               const std::vector<Box>& cover);

}  // namespace dstage
