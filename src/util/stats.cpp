#include "util/stats.hpp"

#include <cmath>
#include <cstdio>

namespace dstage {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::sum() const {
  // Accumulate in sorted order so the result is a function of the sample
  // multiset, not of insertion order — merge() stays commutative down to
  // the last ulp (cross-thread sweep aggregates must be bit-identical).
  ensure_sorted();
  double s = 0;
  for (double x : samples_) s += x;
  return s;
}

double SampleSet::mean() const {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  // !(p > 0) also catches NaN — casting a NaN rank to an index is UB and
  // could read past the end.
  if (!(p > 0)) return samples_.front();
  if (p >= 100) return samples_.back();
  const std::size_t n = samples_.size();
  const double rank = p / 100.0 * static_cast<double>(n - 1);
  // Clamp the float->index cast so rounding at the top of the range can
  // never make samples_[lo + 1] index one past the end.
  const std::size_t lo = std::min(static_cast<std::size_t>(rank), n - 2);
  const double frac = std::clamp(rank - static_cast<double>(lo), 0.0, 1.0);
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void SampleSet::merge(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void Watermark::add(std::int64_t delta) {
  current_ += delta;
  peak_ = std::max(peak_, current_);
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace dstage
