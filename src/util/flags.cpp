#include "util/flags.hpp"

namespace dstage {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare switch
    }
  }
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Flags::get_int(const std::string& name, int fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoi(it->second);
}

double Flags::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace dstage
