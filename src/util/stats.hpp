// Lightweight statistics accumulators for run metrics (write response times,
// memory watermarks, per-timestep timelines).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dstage {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains samples for percentile queries. Used where the tail matters
/// (e.g. per-put response under contention).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;  // a percentile() call may have sorted the prefix
  }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// Sum over the *sorted* samples — order-insensitive like percentile().
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  /// Linear-interpolated percentile on an (n - 1) rank basis, p clamped to
  /// [0, 100]. Empty set reads 0.0; a single sample is every percentile.
  [[nodiscard]] double percentile(double p) const;
  /// Concatenate another set's samples (cross-thread sweep aggregation).
  /// Percentiles of the merged set are order-insensitive, so merging runs
  /// in any order yields identical stats.
  void merge(const SampleSet& other);

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// High-water-mark tracker for byte counts.
class Watermark {
 public:
  void add(std::int64_t delta);
  [[nodiscard]] std::int64_t current() const { return current_; }
  [[nodiscard]] std::int64_t peak() const { return peak_; }

 private:
  std::int64_t current_ = 0;
  std::int64_t peak_ = 0;
};

/// Human-readable byte size ("1.25 GiB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace dstage
