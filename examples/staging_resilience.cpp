// Demonstrates the CoREC-style data-resilience layer under the workflow
// framework: staged and logged payloads are protected by erasure-coded
// fragments on peer staging servers, event queues are mirrored to each
// server's successor, and a staging-server crash is healed by the recovery
// manager while a producer/consumer pipeline keeps running.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "dht/spatial_index.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/recovery.hpp"
#include "staging/server.hpp"

using namespace dstage;

int main() {
  sim::Engine eng;
  net::Fabric fabric(eng, {});
  cluster::Cluster cluster(eng, fabric);
  const Box domain = Box::from_dims(128, 128, 128);
  const int nservers = 4;
  dht::SpatialIndex index(domain, nservers, 8);

  staging::ServerParams params;
  params.logging = true;
  params.policy.kind = resilience::Redundancy::kErasureCode;
  params.policy.rs_k = 4;
  params.policy.rs_m = 2;

  std::vector<cluster::VprocId> vprocs;
  std::vector<std::unique_ptr<staging::StagingServer>> servers;
  for (int s = 0; s < nservers; ++s) {
    auto vp = cluster.add_vproc("staging-" + std::to_string(s),
                                cluster.add_node());
    vprocs.push_back(vp);
    servers.push_back(
        std::make_unique<staging::StagingServer>(cluster, vp, params));
    servers.back()->register_var("field", {{1, true}});
  }
  std::vector<net::EndpointId> endpoints;
  for (auto vp : vprocs) endpoints.push_back(cluster.vproc(vp).endpoint);
  for (std::size_t s = 0; s < servers.size(); ++s) {
    servers[s]->set_peers(static_cast<int>(s), endpoints);
    servers[s]->start();
  }
  staging::StagingRecoveryManager manager(cluster, &servers, vprocs, params);
  manager.arm();

  auto make_client = [&](int app) {
    auto vp =
        cluster.add_vproc("app" + std::to_string(app), cluster.add_node());
    staging::ClientParams cp;
    cp.app = app;
    cp.logged = true;
    cp.mem_scale = 4096;
    cp.put_timeout = sim::seconds(15);
    cp.get_timeout = sim::seconds(30);
    return std::make_unique<staging::StagingClient>(cluster, index, vprocs,
                                                    vp, cp);
  };
  auto producer = make_client(0);
  auto consumer = make_client(1);

  int wrong = 0, corrupt = 0;
  sim::spawn(eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&eng, nullptr};
    for (staging::Version v = 1; v <= 10; ++v) {
      co_await ctx.delay(sim::seconds(3));  // "compute"
      co_await producer->put(ctx, "field", v, domain);
      auto r = co_await consumer->get(ctx, "field", v, domain);
      wrong += r.wrong_version;
      corrupt += r.corrupt;
      if (v == 4) {
        std::printf("[t=%.1fs] killing staging server 2 mid-pipeline\n",
                    ctx.now().seconds());
        cluster.kill(vprocs[2]);
      }
    }
  });
  eng.run();

  std::printf("\nstaging failures: %d, recovered: %d\n",
              manager.stats().server_failures,
              manager.stats().servers_recovered);
  std::printf("server 2 rebuilt %llu chunks from peer fragments "
              "(%llu unrecoverable)\n",
              static_cast<unsigned long long>(
                  servers[2]->stats().chunks_rebuilt),
              static_cast<unsigned long long>(
                  servers[2]->stats().rebuild_failures));
  std::uint64_t fragment_bytes = 0;
  for (const auto& s : servers)
    fragment_bytes += s->memory().redundancy_bytes;
  std::printf("fragment bytes across the group: %s (RS(4,2): +5/4 of "
              "payload)\n",
              format_bytes(fragment_bytes).c_str());
  std::printf("pipeline consistency through the outage: %s "
              "(wrong=%d corrupt=%d)\n",
              (wrong + corrupt) == 0 ? "intact" : "VIOLATED", wrong,
              corrupt);
  return (wrong + corrupt) == 0 ? 0 : 1;
}
