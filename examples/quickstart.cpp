// Quickstart: a two-component coupled workflow (simulation → analytic)
// protected by workflow-level uncoordinated checkpoint/restart with data
// logging. One failure is injected; the run recovers via the staging
// replay mechanism and finishes with zero consistency anomalies.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "core/executor.hpp"
#include "core/setups.hpp"

int main() {
  using namespace dstage;

  // Start from the paper's Table II setup: 256 simulation cores writing a
  // 512x512x256 field each timestep, 64 analytic cores reading it back,
  // 4 staging server processes in between.
  core::WorkflowSpec spec =
      core::table2_setup(core::Scheme::kUncoordinated);
  spec.total_ts = 20;        // keep the demo short
  spec.failures.count = 1;   // one fail-stop crash at a random timestep
  spec.failures.seed = 6;    // hits the simulation mid-interval (3 ts replay)

  std::printf("running %d timesteps under scheme %s with %d failure(s)\n",
              spec.total_ts, core::scheme_name(spec.scheme),
              spec.failures.count);

  core::WorkflowRunner runner(spec);
  core::RunMetrics m = runner.run();

  std::printf("\n== run summary ==\n");
  std::printf("total workflow execution time: %.2f s (virtual)\n",
              m.total_time_s);
  std::printf("failures injected: %d\n", m.failures_injected);
  for (const auto& c : m.components) {
    std::printf(
        "  %-12s finished at %8.2f s | %2d ckpts | %d failures | "
        "%d ts reworked\n",
        c.name.c_str(), c.completion_time_s, c.checkpoints, c.failures,
        c.timesteps_reworked);
  }
  std::printf("staging: %llu puts (%llu suppressed on replay), %llu gets "
              "(%llu served from log)\n",
              static_cast<unsigned long long>(m.staging.puts),
              static_cast<unsigned long long>(m.staging.puts_suppressed),
              static_cast<unsigned long long>(m.staging.gets),
              static_cast<unsigned long long>(m.staging.gets_from_log));
  std::printf("consistency anomalies observed: %d (must be 0 with logging)\n",
              m.total_anomalies());
  return m.total_anomalies() == 0 ? 0 : 1;
}
