// The paper's motivating workflow (Figs. 1-2): an S3D-style DNS solver
// coupled through the staging area to a lower-resolution LES solver and a
// visualization/feature-extraction analysis running at a lower temporal
// frequency. All three components run under uncoordinated checkpoint/
// restart with data logging; failures are injected into the mix.
//
// Demonstrates: multi-variable coupling, temporal-frequency reads
// (analyses at different rates on non-overlapping subsets), per-component
// checkpoint periods, and workflow-level recovery.
#include <cstdio>

#include "core/executor.hpp"

int main() {
  using namespace dstage;
  core::WorkflowSpec spec;
  spec.domain = Box::from_dims(512, 512, 256);
  spec.total_ts = 24;
  spec.staging_servers = 4;
  spec.staging_cores = 32;
  spec.scheme = core::Scheme::kUncoordinated;
  spec.failures.count = 2;
  spec.failures.seed = 3;

  // DNS producer: resolves the full domain, writes species + temperature.
  core::ComponentSpec dns;
  dns.name = "s3d-dns";
  dns.cores = 256;
  dns.compute_per_ts_s = 9.0;
  dns.ckpt_period = 4;
  dns.writes.push_back(core::CouplingWrite{"species", 1.0});
  dns.writes.push_back(core::CouplingWrite{"temperature", 1.0});
  spec.components.push_back(dns);

  // LES consumer: coupled every timestep on a coarse (40%) subset.
  core::ComponentSpec les;
  les.name = "les";
  les.cores = 128;
  les.compute_per_ts_s = 4.0;
  les.ckpt_period = 6;
  les.reads.push_back(core::CouplingRead{"species", 0.4, 1});
  spec.components.push_back(les);

  // Visualization / feature extraction: every 2nd timestep, temperature.
  core::ComponentSpec viz;
  viz.name = "viz";
  viz.cores = 64;
  viz.compute_per_ts_s = 2.0;
  viz.ckpt_period = 5;
  viz.reads.push_back(core::CouplingRead{"temperature", 1.0, 2});
  spec.components.push_back(viz);

  std::printf("S3D coupled workflow: DNS -> {LES @1x, viz @2x}, "
              "%d timesteps, %d failures\n",
              spec.total_ts, spec.failures.count);

  core::WorkflowRunner runner(spec);
  core::RunMetrics m = runner.run();

  std::printf("\ntotal execution time: %.2f s (virtual)\n", m.total_time_s);
  for (const auto& c : m.components) {
    std::printf(
        "  %-8s %8.2f s | %2d ckpts | %d failures | %2d ts reworked | "
        "%d anomalies\n",
        c.name.c_str(), c.completion_time_s, c.checkpoints, c.failures,
        c.timesteps_reworked, c.wrong_version_reads + c.corrupt_reads);
  }
  std::printf("staging: %llu puts (%llu suppressed), %llu gets "
              "(%llu from log), GC reclaimed %llu versions\n",
              static_cast<unsigned long long>(m.staging.puts),
              static_cast<unsigned long long>(m.staging.puts_suppressed),
              static_cast<unsigned long long>(m.staging.gets),
              static_cast<unsigned long long>(m.staging.gets_from_log),
              static_cast<unsigned long long>(m.staging.gc_versions_dropped));
  const int anomalies = m.total_anomalies();
  std::printf("consistency anomalies: %d (logging keeps the coupling "
              "consistent through recovery)\n", anomalies);
  return anomalies == 0 ? 0 : 1;
}
