// The Fig. 6 scenario: hybrid checkpointing. The simulation protects itself
// with checkpoint/restart (+ data logging in staging); the analysis uses
// process replication. A failure in the replicated analytic is masked by
// failover — no rollback, no staging replay — while a failure in the
// simulation still uses the logged replay path.
#include <cstdio>

#include "core/executor.hpp"
#include "core/setups.hpp"

static dstage::core::RunMetrics run_with_seed(std::uint64_t seed) {
  using namespace dstage;
  core::WorkflowSpec spec = core::table2_setup(core::Scheme::kHybrid);
  spec.total_ts = 20;
  spec.failures.count = 1;
  spec.failures.seed = seed;
  core::WorkflowRunner runner(spec);
  return runner.run();
}

int main() {
  using namespace dstage;

  // Seed 10 fails the (replicated) analytic; seed 6 fails the simulation.
  std::printf("== failure in the replicated analytic (masked failover) ==\n");
  auto masked = run_with_seed(10);
  std::printf("  analytic failures: %d, timesteps reworked: %d "
              "(no rollback)\n",
              masked.component("analytic").failures,
              masked.component("analytic").timesteps_reworked);
  std::printf("  staging replays triggered: %llu (replication does not "
              "switch staging to recovery)\n",
              static_cast<unsigned long long>(masked.staging.gets_from_log +
                                              masked.staging.puts_suppressed));
  std::printf("  total time: %.2f s, anomalies: %d\n", masked.total_time_s,
              masked.total_anomalies());

  std::printf("\n== failure in the simulation (C/R + logged replay) ==\n");
  auto replayed = run_with_seed(6);
  std::printf("  simulation failures: %d, timesteps reworked: %d\n",
              replayed.component("simulation").failures,
              replayed.component("simulation").timesteps_reworked);
  std::printf("  redundant writes suppressed on replay: %llu\n",
              static_cast<unsigned long long>(
                  replayed.staging.puts_suppressed));
  std::printf("  total time: %.2f s, anomalies: %d\n", replayed.total_time_s,
              replayed.total_anomalies());

  const bool ok = masked.total_anomalies() == 0 &&
                  replayed.total_anomalies() == 0 &&
                  masked.component("analytic").timesteps_reworked == 0 &&
                  replayed.staging.puts_suppressed > 0;
  std::printf("\nhybrid scheme behaved as described in the paper: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
