// Reproduces the Fig. 2 inconsistency cases directly against the staging
// API (the Global User Interface of Table 1), then shows the logged
// interface eliminating them.
//
//   case 1: a restarted consumer re-reads and observes a *newer* version
//           than it did initially (detected via content keys);
//   case 2: a restarted producer re-stages data that is already staged
//           (wasted writes), which logging suppresses.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "core/dspaces_api.hpp"
#include "dht/spatial_index.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/server.hpp"

using namespace dstage;

namespace {

struct Stage {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  cluster::Cluster cluster{eng, fabric};
  Box domain = Box::from_dims(64, 64, 64);
  dht::SpatialIndex index{domain, 2, 8};
  std::vector<cluster::VprocId> server_vprocs;
  std::vector<std::unique_ptr<staging::StagingServer>> servers;

  explicit Stage(bool logging) {
    staging::ServerParams params;
    params.logging = logging;
    for (int s = 0; s < 2; ++s) {
      auto vp =
          cluster.add_vproc("srv" + std::to_string(s), cluster.add_node());
      server_vprocs.push_back(vp);
      servers.push_back(
          std::make_unique<staging::StagingServer>(cluster, vp, params));
      servers.back()->start();
      servers.back()->register_var("field", {{1, true}});
    }
  }

  std::unique_ptr<staging::StagingClient> client(int app, bool logged) {
    auto vp =
        cluster.add_vproc("app" + std::to_string(app), cluster.add_node());
    staging::ClientParams cp;
    cp.app = app;
    cp.logged = logged;
    cp.mem_scale = 4096;
    return std::make_unique<staging::StagingClient>(
        cluster, index, server_vprocs, vp, cp);
  }
};

// A producer stages versions 1..5; the consumer reads them, checkpointing
// after version 2, then "fails" and re-reads 3..5. Returns the number of
// wrong-version reads observed during the replay.
int consumer_restart_scenario(bool logged) {
  Stage stage(logged);
  auto producer = stage.client(0, logged);
  auto consumer = stage.client(1, logged);
  int wrong = 0;
  std::uint64_t suppressed = 0;
  sim::spawn(stage.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&stage.eng, nullptr};
    for (staging::Version v = 1; v <= 5; ++v) {
      co_await core::dspaces_put_with_log(*producer, ctx, "field", v,
                                          stage.domain);
      auto r = co_await core::dspaces_get_with_log(*consumer, ctx, "field",
                                                   v, stage.domain);
      wrong += r.wrong_version;
      if (v == 2) co_await core::workflow_check(*consumer, ctx, 2);
    }
    // The consumer fails, rolls back to its ts-2 checkpoint, re-attaches...
    co_await core::workflow_restart(*consumer, ctx, 2);
    // ...and re-executes its reads of versions 3..5.
    for (staging::Version v = 3; v <= 5; ++v) {
      auto r = co_await core::dspaces_get_with_log(*consumer, ctx, "field",
                                                   v, stage.domain);
      wrong += r.wrong_version;
    }
    // The producer also demonstrates case 2: roll it back to a checkpoint
    // and re-issue its writes.
    co_await core::workflow_check(*producer, ctx, 3);
    co_await core::dspaces_put_with_log(*producer, ctx, "field", 6,
                                        stage.domain);
    co_await core::workflow_restart(*producer, ctx, 3);
    auto p = co_await core::dspaces_put_with_log(*producer, ctx, "field", 6,
                                                 stage.domain);
    suppressed = p.suppressed;
  });
  stage.eng.run();
  std::printf("  %-14s wrong-version reads: %d, redundant writes "
              "suppressed: %llu\n",
              logged ? "with logging:" : "without:", wrong,
              static_cast<unsigned long long>(suppressed));
  return wrong;
}

}  // namespace

int main() {
  std::printf("Fig. 2 consistency anomalies, reproduced against the staging "
              "API\n\n");
  std::printf("individual C/R (no data logging):\n");
  const int unlogged_wrong = consumer_restart_scenario(false);
  std::printf("\nuncoordinated C/R with data logging:\n");
  const int logged_wrong = consumer_restart_scenario(true);

  const bool demonstrates = unlogged_wrong > 0 && logged_wrong == 0;
  std::printf("\n%s\n",
              demonstrates
                  ? "=> the data log restores exactly the versions the "
                    "consumer saw initially; without it the restarted "
                    "consumer reads the wrong data."
                  : "UNEXPECTED: scenario did not demonstrate the anomaly");
  return demonstrates ? 0 : 1;
}
